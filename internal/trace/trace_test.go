package trace

import (
	"math/rand"
	"testing"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rules"
)

func testRuleSet(n int) *rules.RuleSet {
	return classbench.Generate(classbench.Profiles()[0], n)
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := testRuleSet(500)
	tr := Uniform(rng, rs, 4000)
	if len(tr.Packets) != 4000 || len(tr.Sources) != 4000 {
		t.Fatalf("trace sizes: %d packets, %d sources", len(tr.Packets), len(tr.Sources))
	}
	// Every packet matches its source rule.
	for i, p := range tr.Packets {
		if !rs.Rules[tr.Sources[i]].Matches(p) {
			t.Fatalf("packet %d does not match its source rule", i)
		}
	}
	// Uniformity: the top 3% of rules should carry roughly 3% of traffic
	// (clearly below any skewed preset).
	if share := tr.Top3Share(); share > 0.15 {
		t.Errorf("uniform trace Top3Share = %.3f, want < 0.15", share)
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := testRuleSet(2000)
	var prev float64
	for _, preset := range SkewPresets() {
		tr, err := Zipf(rng, rs, 30000, preset)
		if err != nil {
			t.Fatal(err)
		}
		share := tr.Top3Share()
		if share <= prev {
			t.Errorf("%s: Top3Share %.3f not increasing over previous %.3f", preset.Name, share, prev)
		}
		prev = share
		for i, p := range tr.Packets {
			if !rs.Rules[tr.Sources[i]].Matches(p) {
				t.Fatalf("%s: packet %d does not match its source", preset.Name, i)
			}
		}
	}
	// The heaviest preset should be visibly skewed.
	if prev < 0.5 {
		t.Errorf("zipf95 Top3Share = %.3f, want >= 0.5", prev)
	}
}

func TestZipfRejectsBadAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rs := testRuleSet(100)
	if _, err := Zipf(rng, rs, 10, SkewPreset{"bad", 0, 1.0}); err == nil {
		t.Error("alpha <= 1 must be rejected")
	}
}

func TestCAIDALike(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs := testRuleSet(1000)
	tr, err := CAIDALike(rng, rs, 20000, CAIDAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 20000 {
		t.Fatalf("got %d packets", len(tr.Packets))
	}
	for i, p := range tr.Packets {
		if !rs.Rules[tr.Sources[i]].Matches(p) {
			t.Fatalf("packet %d does not match its source", i)
		}
	}
	// Flow consistency: all packets of one source rule drawn through the
	// same flow must be identical — count distinct packets per source.
	type key [5]uint32
	bySource := make(map[int]map[key]bool)
	for i, p := range tr.Packets {
		var k key
		copy(k[:], p)
		m, ok := bySource[tr.Sources[i]]
		if !ok {
			m = make(map[key]bool)
			bySource[tr.Sources[i]] = m
		}
		m[k] = true
	}
	// Temporal locality: consecutive duplicates should be common.
	dups := 0
	for i := 1; i < len(tr.Packets); i++ {
		same := true
		for d := range tr.Packets[i] {
			if tr.Packets[i][d] != tr.Packets[i-1][d] {
				same = false
				break
			}
		}
		if same {
			dups++
		}
	}
	if float64(dups)/float64(len(tr.Packets)) < 0.005 {
		t.Errorf("only %d consecutive duplicates in 20000 packets; locality too weak", dups)
	}
	if _, err := CAIDALike(rng, rs, 10, CAIDAOptions{Locality: 1.5}); err == nil {
		t.Error("locality >= 1 must be rejected")
	}
}

func TestTop3ShareEmpty(t *testing.T) {
	tr := &Trace{}
	if got := tr.Top3Share(); got != 0 {
		t.Errorf("Top3Share of empty trace = %v", got)
	}
}
