// Package trace generates the packet traces of §5.1.1: uniform traces that
// access all rules equally (the worst-case memory access pattern), Zipf
// traces with the paper's four skew presets, and CAIDA-like traces that
// reproduce the temporal locality of a real backbone capture after the
// paper's rule-set mapping (each CAIDA flow is consistently mapped to one
// rule-matching 5-tuple, so only the trace's locality structure survives —
// which is exactly what this generator synthesizes).
package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/rules"
)

// Trace is a sequence of packets plus the positions of the rules they were
// generated from (for diagnostics; the classifier result may differ when a
// higher-priority rule also matches).
type Trace struct {
	Packets []rules.Packet
	Sources []int
}

// Uniform draws n packets from rules chosen uniformly at random — every
// rule is exercised with equal probability (§5.1.1 "Uniform traffic").
func Uniform(rng *rand.Rand, rs *rules.RuleSet, n int) *Trace {
	t := &Trace{Packets: make([]rules.Packet, n), Sources: make([]int, n)}
	for i := 0; i < n; i++ {
		ri := rng.Intn(rs.Len())
		t.Sources[i] = ri
		t.Packets[i] = classbench.MatchingPacket(rng, &rs.Rules[ri])
	}
	return t
}

// SkewPreset names the paper's Zipf parameters (Figure 12): the skew is
// expressed as the share of traffic accounted for by the 3% most frequent
// flows.
type SkewPreset struct {
	Name  string
	Top3  float64 // share of traffic from the top 3% flows
	Alpha float64 // Zipf exponent
}

// Presets from Figure 12.
var (
	Zipf80 = SkewPreset{"zipf80", 0.80, 1.05}
	Zipf85 = SkewPreset{"zipf85", 0.85, 1.10}
	Zipf90 = SkewPreset{"zipf90", 0.90, 1.15}
	Zipf95 = SkewPreset{"zipf95", 0.95, 1.25}
)

// SkewPresets lists the four presets in paper order.
func SkewPresets() []SkewPreset { return []SkewPreset{Zipf80, Zipf85, Zipf90, Zipf95} }

// Zipf draws n packets with rule popularity following a Zipf distribution
// with the preset's exponent; rule ranks are a random permutation so the
// popular rules are spread across the set.
func Zipf(rng *rand.Rand, rs *rules.RuleSet, n int, preset SkewPreset) (*Trace, error) {
	if preset.Alpha <= 1 {
		return nil, fmt.Errorf("trace: Zipf exponent must be > 1, got %v", preset.Alpha)
	}
	z := rand.NewZipf(rng, preset.Alpha, 1, uint64(rs.Len()-1))
	if z == nil {
		return nil, fmt.Errorf("trace: invalid Zipf parameters (alpha=%v, n=%d)", preset.Alpha, rs.Len())
	}
	perm := rng.Perm(rs.Len())
	t := &Trace{Packets: make([]rules.Packet, n), Sources: make([]int, n)}
	for i := 0; i < n; i++ {
		ri := perm[int(z.Uint64())]
		t.Sources[i] = ri
		t.Packets[i] = classbench.MatchingPacket(rng, &rs.Rules[ri])
	}
	return t, nil
}

// CAIDAOptions tunes the synthetic CAIDA-like trace.
type CAIDAOptions struct {
	// Flows is the number of distinct flows; 0 derives n/16.
	Flows int
	// WorkingSet is the number of simultaneously active flows between
	// which packets interleave; 0 means 64.
	WorkingSet int
	// Locality is the probability the next packet continues a flow from
	// the working set rather than activating a new flow; 0 means 0.85.
	Locality float64
}

// CAIDALike synthesizes a trace with flow-level temporal locality: flows
// map to rules Zipf-wise (heavy hitters exist), each flow keeps a single
// consistent 5-tuple (the paper's CAIDA mapping), and packets interleave
// within a bounded working set of active flows, mimicking the burstiness of
// a backbone capture.
func CAIDALike(rng *rand.Rand, rs *rules.RuleSet, n int, opt CAIDAOptions) (*Trace, error) {
	if opt.Flows <= 0 {
		opt.Flows = n / 16
		if opt.Flows < 1 {
			opt.Flows = 1
		}
	}
	if opt.WorkingSet <= 0 {
		opt.WorkingSet = 64
	}
	if opt.Locality <= 0 {
		opt.Locality = 0.85
	}
	if opt.Locality >= 1 {
		return nil, fmt.Errorf("trace: locality must be < 1, got %v", opt.Locality)
	}

	// One consistent packet per flow, flows assigned to rules Zipf-wise.
	z := rand.NewZipf(rng, 1.1, 1, uint64(rs.Len()-1))
	perm := rng.Perm(rs.Len())
	flowPkt := make([]rules.Packet, opt.Flows)
	flowSrc := make([]int, opt.Flows)
	for f := range flowPkt {
		ri := perm[int(z.Uint64())]
		flowSrc[f] = ri
		flowPkt[f] = classbench.MatchingPacket(rng, &rs.Rules[ri])
	}

	t := &Trace{Packets: make([]rules.Packet, n), Sources: make([]int, n)}
	working := make([]int, 0, opt.WorkingSet)
	next := 0
	activate := func() int {
		f := next % opt.Flows
		next++
		if len(working) < opt.WorkingSet {
			working = append(working, f)
		} else {
			working[rng.Intn(len(working))] = f
		}
		return f
	}
	activate()
	for i := 0; i < n; i++ {
		var f int
		if rng.Float64() < opt.Locality {
			f = working[rng.Intn(len(working))]
		} else {
			f = activate()
		}
		t.Packets[i] = flowPkt[f]
		t.Sources[i] = flowSrc[f]
	}
	return t, nil
}

// Top3Share measures the share of trace packets attributable to the 3% most
// frequent source rules — the skew statistic of Figure 12.
func (t *Trace) Top3Share() float64 {
	if len(t.Sources) == 0 {
		return 0
	}
	counts := make(map[int]int)
	for _, s := range t.Sources {
		counts[s]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	// Descending selection of the top 3% of distinct flows.
	k := len(freqs) * 3 / 100
	if k < 1 {
		k = 1
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	for i := 0; i < k && i < len(freqs); i++ {
		top += freqs[i]
	}
	return float64(top) / float64(len(t.Sources))
}
