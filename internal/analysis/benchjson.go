package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/core"
	"nuevomatch/internal/cpu"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/trace"
)

// BenchArtifact is the machine-readable performance record benchrunner
// emits as BENCH_<name>.json: one standardized measurement of the engine's
// hot paths so successive PRs leave a comparable perf trajectory behind.
type BenchArtifact struct {
	Name      string `json:"name"`
	Profile   string `json:"profile"`
	Rules     int    `json:"rules"`
	TraceLen  int    `json:"trace_len"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Timestamp string `json:"timestamp"`

	// Machine pins the hardware and runtime context of the run: a
	// BatchSpeedup measured on a single-core container and one from an
	// 8-core runner are different experiments, and the artifact must say
	// which one it records.
	Machine MachineInfo `json:"machine"`

	Engine struct {
		Coverage          float64 `json:"coverage"`
		NumISets          int     `json:"num_isets"`
		RemainderSize     int     `json:"remainder_size"`
		MaxSearchDistance int     `json:"max_search_distance"`
		TrainingSeconds   float64 `json:"training_seconds"`
		TotalBytes        int     `json:"total_bytes"`
		ISetBytes         int     `json:"iset_bytes"`
		RemainderBytes    int     `json:"remainder_bytes"`

		// RemainderBackend is the remainder classifier that serves
		// (BuildStats.RemainderBackend); under -remainder auto,
		// RemainderAutoSelected is true and RemainderScores carries the
		// per-candidate selection measurements.
		RemainderBackend      string                `json:"remainder_backend"`
		RemainderAutoSelected bool                  `json:"remainder_auto_selected,omitempty"`
		RemainderScores       []core.RemainderScore `json:"remainder_scores,omitempty"`
	} `json:"engine"`

	// Lookup is the per-packet scalar path; LookupBatch the batched path;
	// LookupBatchParallel the two-worker split of §5.1.
	Lookup              BenchPath `json:"lookup"`
	LookupBatch         BenchPath `json:"lookup_batch"`
	LookupBatchParallel BenchPath `json:"lookup_batch_parallel"`

	// BatchSpeedup is LookupBatch throughput over Lookup throughput — the
	// number the batched-inference refactor is accountable for.
	BatchSpeedup float64 `json:"batch_speedup"`

	// BatchVerifiedPackets/BatchMismatches record the conformance pass run
	// before any timing: the batched path (float32 SIMD kernel included) is
	// replayed over the whole trace against per-packet Lookup. A speedup is
	// only admissible evidence when BatchMismatches is zero.
	BatchVerifiedPackets int `json:"batch_verified_packets"`
	BatchMismatches      int `json:"batch_mismatches"`

	// Persistence records the table codec's amortization story: what Build
	// spent training versus what Save and a warm-start Load cost on the same
	// host, with the loaded table verified lookup-identical against the
	// linear reference.
	Persistence PersistenceReport `json:"persistence"`

	// Churn, when present, is the autopilot churn experiment: sustained
	// insert/delete/lookup workloads with drift-driven background retraining
	// (retrain counts, swap latency, concurrent-lookup availability).
	Churn *ChurnReport `json:"churn,omitempty"`

	// Cluster, when present, is the sharded serving layer measured over the
	// same profile: per-shard and merged throughput, replication overhead,
	// and the merged-vs-single-engine batch ratio (see docs/BENCHMARKS.md).
	Cluster *ClusterReport `json:"cluster,omitempty"`

	// Serving, when present, measures the network serving tier (nmserve's
	// coalescing ingress) against the same engine called directly: wire
	// overhead, batch fill under concurrent clients, and client-observed
	// end-to-end latency (see docs/SERVING.md).
	Serving *ServingReport `json:"serving,omitempty"`
}

// MachineInfo is the benchmark host fingerprint embedded in every artifact.
type MachineInfo struct {
	GoArch     string `json:"goarch"`
	GoOS       string `json:"goos"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// SIMDFeatures are the vector ISA extensions detected at startup
	// (internal/cpu); empty on non-amd64 or noasm builds.
	SIMDFeatures []string `json:"simd_features"`
	// Kernel is the active RQ-RMI batched-inference kernel ("avx2" or
	// "go-f32"), after any -kernel override.
	Kernel string `json:"kernel"`
}

// CurrentMachine captures the host fingerprint for artifacts.
func CurrentMachine() MachineInfo {
	return MachineInfo{
		GoArch:       runtime.GOARCH,
		GoOS:         runtime.GOOS,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		SIMDFeatures: cpu.Features(),
		Kernel:       rqrmi.KernelName(),
	}
}

// PersistenceReport measures the Save → Load round trip of the built
// engine. LoadSpeedup is BuildSeconds / LoadSeconds — the factor the
// persistence lifecycle amortizes away on every restart.
type PersistenceReport struct {
	BuildSeconds    float64 `json:"build_seconds"`
	SaveSeconds     float64 `json:"save_seconds"`
	LoadSeconds     float64 `json:"load_seconds"`
	TableBytes      int     `json:"table_bytes"`
	LoadSpeedup     float64 `json:"load_speedup"`
	VerifiedPackets int     `json:"verified_packets"`
	Mismatches      int     `json:"mismatches"`
}

// AttachChurn runs the churn experiment with opsPerProfile operations per
// profile and records it in the artifact. opsPerProfile <= 0 skips it.
func (a *BenchArtifact) AttachChurn(opsPerProfile int, seed int64) error {
	if opsPerProfile <= 0 {
		return nil
	}
	cfg := DefaultChurnConfig()
	cfg.Ops = opsPerProfile
	cfg.Seed = seed
	rep, err := RunChurn(cfg)
	if err != nil {
		return err
	}
	a.Churn = rep
	return nil
}

// BenchPath is the measurement of one lookup entry point. AllocsPerOp and
// BytesPerOp are heap allocations per call of the entry point (per packet
// for the scalar path, per batch for the batched paths), measured after
// warm-up — the artifact that enforces the zero-alloc hot-path claim across
// PRs.
type BenchPath struct {
	ThroughputPPS float64 `json:"throughput_pps"`
	P50Nanos      float64 `json:"p50_ns"`
	P99Nanos      float64 `json:"p99_ns"`
	BatchSize     int     `json:"batch_size,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
}

// RunBenchArtifact builds the engine (paper options; the remainder backend
// is chosen by name — "" or "tm"/"tuplemerge" for the default, any
// registered name such as "rvh", or "auto" for workload auto-selection)
// over a ClassBench profile and measures the three lookup paths.
func RunBenchArtifact(profileName string, size, traceLen int, seed int64, remainder string) (*BenchArtifact, error) {
	prof, err := classbench.ProfileByName(profileName)
	if err != nil {
		return nil, err
	}
	rs := classbench.Generate(prof, size)
	rng := rand.New(rand.NewSource(seed))
	tr := trace.Uniform(rng, rs, traceLen)

	opt, err := NMOptions(TM, 64)
	if err != nil {
		return nil, err
	}
	switch remainder {
	case "", TM, "tuplemerge":
		// NMOptions default: TupleMerge.
	default:
		opt.RemainderName = remainder
	}
	buildStart := time.Now()
	e, err := core.Build(rs, opt)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(buildStart)

	a := &BenchArtifact{
		Name:      fmt.Sprintf("%s_%d", profileName, size),
		Profile:   profileName,
		Rules:     rs.Len(),
		TraceLen:  len(tr.Packets),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Machine:   CurrentMachine(),
	}
	st := e.Stats()
	a.Engine.Coverage = st.Coverage
	a.Engine.NumISets = e.NumISets()
	a.Engine.RemainderSize = st.RemainderSize
	a.Engine.MaxSearchDistance = st.MaxSearchDistance
	a.Engine.TrainingSeconds = st.TrainingTime.Seconds()
	a.Engine.TotalBytes = e.MemoryFootprint()
	a.Engine.ISetBytes = e.RQRMIBytes()
	a.Engine.RemainderBytes = e.RemainderBytes()
	a.Engine.RemainderBackend = st.RemainderBackend
	a.Engine.RemainderAutoSelected = st.RemainderAutoSelected
	a.Engine.RemainderScores = st.RemainderScores

	per, err := measurePersistence(e, buildTime, rs, tr.Packets)
	if err != nil {
		return nil, fmt.Errorf("persistence: %w", err)
	}
	a.Persistence = per

	// Conformance before timing: the batched path must agree with the
	// scalar path packet-for-packet, or the speedup below measures a
	// different function.
	bout := make([]int, len(tr.Packets))
	e.LookupBatch(tr.Packets, bout)
	for i, p := range tr.Packets {
		if bout[i] != e.Lookup(p) {
			a.BatchMismatches++
		}
	}
	a.BatchVerifiedPackets = len(tr.Packets)

	a.Lookup = measureScalar(e, tr.Packets)
	a.LookupBatch = measureBatch(tr.Packets, BatchSize, func(pkts []rules.Packet, out []int) {
		e.LookupBatch(pkts, out)
	})
	a.LookupBatchParallel = measureBatch(tr.Packets, BatchSize, func(pkts []rules.Packet, out []int) {
		e.LookupBatchParallel(pkts, out)
	})
	if a.Lookup.ThroughputPPS > 0 {
		a.BatchSpeedup = a.LookupBatch.ThroughputPPS / a.Lookup.ThroughputPPS
	}
	return a, nil
}

// measurePersistence runs the Save → Load round trip on the freshly built
// engine and verifies the loaded engine against the linear reference on the
// whole trace. Load is averaged over a few runs (it is milliseconds against
// a build of seconds, so a single sample would be noise-dominated).
func measurePersistence(e *core.Engine, buildTime time.Duration, rs *rules.RuleSet, pkts []rules.Packet) (PersistenceReport, error) {
	var rep PersistenceReport
	rep.BuildSeconds = buildTime.Seconds()

	var buf bytes.Buffer
	saveStart := time.Now()
	n, err := e.WriteTo(&buf)
	if err != nil {
		return rep, err
	}
	rep.SaveSeconds = time.Since(saveStart).Seconds()
	rep.TableBytes = int(n)

	const loadRuns = 5
	var loaded *core.Engine
	loadStart := time.Now()
	for i := 0; i < loadRuns; i++ {
		if loaded != nil {
			loaded.Close()
		}
		loaded, err = core.ReadEngine(bytes.NewReader(buf.Bytes()), nil)
		if err != nil {
			return rep, err
		}
	}
	rep.LoadSeconds = time.Since(loadStart).Seconds() / loadRuns
	defer loaded.Close()
	if rep.LoadSeconds > 0 {
		rep.LoadSpeedup = rep.BuildSeconds / rep.LoadSeconds
	}

	for _, p := range pkts {
		if loaded.Lookup(p) != rs.MatchID(p) {
			rep.Mismatches++
		}
	}
	rep.VerifiedPackets = len(pkts)
	return rep, nil
}

// WriteBenchArtifact writes BENCH_<name>.json into dir and returns the path.
func WriteBenchArtifact(dir string, a *BenchArtifact) (string, error) {
	path := filepath.Join(dir, "BENCH_"+a.Name+".json")
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// measureScalar measures per-packet Lookup: aggregate throughput over
// MinMeasure plus p50/p99 of per-packet latency samples.
func measureScalar(c rules.Classifier, pkts []rules.Packet) BenchPath {
	for _, p := range pkts { // warmup
		c.Lookup(p)
	}
	var done int
	start := time.Now()
	for time.Since(start) < MinMeasure {
		for _, p := range pkts {
			c.Lookup(p)
		}
		done += len(pkts)
	}
	out := BenchPath{ThroughputPPS: float64(done) / time.Since(start).Seconds()}

	samples := make([]float64, 0, len(pkts))
	for _, p := range pkts {
		t0 := time.Now()
		c.Lookup(p)
		samples = append(samples, float64(time.Since(t0).Nanoseconds()))
	}
	out.P50Nanos, out.P99Nanos = percentiles(samples)
	out.AllocsPerOp, out.BytesPerOp = allocsPerOp(len(pkts), func() {
		for _, p := range pkts {
			c.Lookup(p)
		}
	})
	return out
}

// allocsPerOp reports heap allocations and bytes per operation of run,
// which performs ops operations. The caller must have warmed the measured
// path up first so one-time lazy initialization is excluded.
func allocsPerOp(ops int, run func()) (allocs, bytes float64) {
	if ops <= 0 {
		return 0, 0
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	run()
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops)
}

// measureBatch measures a batched entry point; latency percentiles are over
// per-batch wall time divided by the batch size (a packet's latency in a
// batched design is the batch's, §5.1).
func measureBatch(pkts []rules.Packet, batch int, fn func([]rules.Packet, []int)) BenchPath {
	if len(pkts) < batch {
		batch = len(pkts)
	}
	res := make([]int, batch)
	for off := 0; off+batch <= len(pkts) && off < 8*batch; off += batch { // warmup
		fn(pkts[off:off+batch], res)
	}
	var done int
	start := time.Now()
	for time.Since(start) < MinMeasure {
		for off := 0; off+batch <= len(pkts); off += batch {
			fn(pkts[off:off+batch], res)
		}
		done += len(pkts) / batch * batch
	}
	out := BenchPath{
		ThroughputPPS: float64(done) / time.Since(start).Seconds(),
		BatchSize:     batch,
	}

	samples := make([]float64, 0, len(pkts)/batch+1)
	for off := 0; off+batch <= len(pkts); off += batch {
		t0 := time.Now()
		fn(pkts[off:off+batch], res)
		samples = append(samples, float64(time.Since(t0).Nanoseconds())/float64(batch))
	}
	out.P50Nanos, out.P99Nanos = percentiles(samples)
	out.AllocsPerOp, out.BytesPerOp = allocsPerOp(len(pkts)/batch, func() {
		for off := 0; off+batch <= len(pkts); off += batch {
			fn(pkts[off:off+batch], res)
		}
	})
	return out
}

// percentiles returns the p50 and p99 of the samples.
func percentiles(xs []float64) (p50, p99 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sort.Float64s(xs)
	at := func(q float64) float64 {
		i := int(q * float64(len(xs)-1))
		return xs[i]
	}
	return at(0.50), at(0.99)
}
