//go:build race

package analysis

// raceEnabled reports whether the race detector instruments this build;
// timing-ratio assertions are skipped under it because instrumentation
// distorts the very overheads they measure.
const raceEnabled = true
