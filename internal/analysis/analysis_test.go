package analysis

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/trace"
)

// tinyConfig keeps every experiment fast enough for unit testing.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		W:            buf,
		Size:         600,
		SmallSizes:   []int{200, 600},
		Profiles:     []string{"acl1", "fw1"},
		TraceLen:     2000,
		StanfordSize: 3000,
		Seed:         1,
	}
}

func init() {
	// Shorten measurements for tests; benchrunner restores the default.
	MinMeasure = 10 * time.Millisecond
}

func TestAllExperimentsRun(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	for _, exp := range Experiments() {
		buf.Reset()
		if err := r.Run(exp); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", exp)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.Run("nope"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Profiles = []string{"acl1"}
	cfg.SmallSizes = []int{200}
	cfg.Size = 400
	r := NewRunner(cfg)
	if err := r.Run("all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Figure 8", "Figure 14", "§5.3.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("combined output missing %q", want)
		}
	}
}

func TestBuildBaselineNames(t *testing.T) {
	rs := classbench.Generate(classbench.Profiles()[0], 200)
	for _, b := range Baselines() {
		c, err := BuildBaseline(b, rs)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			t.Fatalf("%s: nil classifier", b)
		}
	}
	if _, err := BuildBaseline("bogus", rs); err == nil {
		t.Error("bogus baseline must error")
	}
	if _, err := NMOptions("bogus", 64); err == nil {
		t.Error("bogus baseline must error in NMOptions")
	}
}

func TestNMOptionsPerBaseline(t *testing.T) {
	tm, err := NMOptions(TM, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tm.MaxISets != 4 || tm.MinCoverage != 0.05 {
		t.Errorf("tm options = %+v, want 4 iSets at 5%%", tm)
	}
	cs, err := NMOptions(CS, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cs.MaxISets != 2 || cs.MinCoverage != 0.25 {
		t.Errorf("cs options = %+v, want 2 iSets at 25%%", cs)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); got != 4 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{-1, 0, 4}); got != 4 {
		t.Errorf("GeoMean with non-positives = %v, want 4", got)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 6})
	if m != 4 {
		t.Errorf("mean = %v", m)
	}
	if s < 1.6 || s > 1.7 {
		t.Errorf("std = %v, want ~1.63", s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("MeanStd(nil) must be zero")
	}
}

func TestThroughputMeasuresAgree(t *testing.T) {
	rs := classbench.Generate(classbench.Profiles()[0], 300)
	c, err := BuildBaseline(TM, rs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	tr := trace.Uniform(rng, rs, 2000)
	t1 := Throughput1(c, tr.Packets)
	if t1 <= 0 {
		t.Fatal("non-positive throughput")
	}
	l1 := Latency1(c, tr.Packets)
	if l1 <= 0 {
		t.Fatal("non-positive latency")
	}
	// Two instances on two goroutines should not be slower than one. The
	// ratio is meaningless under the race detector, whose instrumentation
	// multiplies the synchronization costs being measured.
	t2 := Throughput2(c, tr.Packets)
	if t2 <= 0 {
		t.Fatal("non-positive 2-core throughput")
	}
	if !raceEnabled && t2 < t1*0.8 {
		t.Errorf("2-core throughput %.0f < 0.8x single-core %.0f", t2, t1)
	}
}

func TestCachePressureStartsAndStops(t *testing.T) {
	p := StartCachePressure(2, 1<<20)
	time.Sleep(20 * time.Millisecond)
	p.Stop() // must not deadlock
}

func TestSampleRuleSet(t *testing.T) {
	rs := classbench.Generate(classbench.Profiles()[0], 500)
	rng := rand.New(rand.NewSource(3))
	sub := SampleRuleSet(rng, rs, 100)
	if sub.Len() != 100 {
		t.Fatalf("sampled %d, want 100", sub.Len())
	}
	if same := SampleRuleSet(rng, rs, 1000); same != rs {
		t.Error("sampling above size must return the input")
	}
	// Order preserved (IDs strictly increasing).
	for i := 1; i < sub.Len(); i++ {
		if sub.Rules[i].ID <= sub.Rules[i-1].ID {
			t.Fatal("sample must preserve order")
		}
	}
}

func TestBenchArtifact(t *testing.T) {
	old := MinMeasure
	MinMeasure = 5 * time.Millisecond
	defer func() { MinMeasure = old }()
	a, err := RunBenchArtifact("acl1", 400, 1000, 1, "auto")
	if err != nil {
		t.Fatal(err)
	}
	if a.Lookup.ThroughputPPS <= 0 || a.LookupBatch.ThroughputPPS <= 0 {
		t.Fatalf("non-positive throughput: %+v", a)
	}
	if !a.Engine.RemainderAutoSelected || a.Engine.RemainderBackend == "" {
		t.Fatalf("auto-select not recorded in artifact: backend=%q auto=%v",
			a.Engine.RemainderBackend, a.Engine.RemainderAutoSelected)
	}
	selected := 0
	for _, s := range a.Engine.RemainderScores {
		if s.Selected {
			selected++
			if s.Name != a.Engine.RemainderBackend {
				t.Fatalf("selected score %q != recorded backend %q", s.Name, a.Engine.RemainderBackend)
			}
		}
	}
	if selected != 1 {
		t.Fatalf("want exactly one selected candidate, got %d", selected)
	}
	if a.Engine.TotalBytes <= 0 {
		t.Fatal("non-positive memory footprint")
	}
	dir := t.TempDir()
	path, err := WriteBenchArtifact(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchArtifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Name != "acl1_400" {
		t.Fatalf("name = %q", back.Name)
	}
}
