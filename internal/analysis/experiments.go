package analysis

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/core"
	"nuevomatch/internal/iset"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/stanford"
	"nuevomatch/internal/trace"
)

// Config scales the experiments. The paper's headline runs use Size=500000
// and all twelve profiles; the defaults here are laptop-scale and every
// experiment accepts the full-scale values through cmd/benchrunner flags.
type Config struct {
	W io.Writer
	// Size is the primary rule-set size (the paper's "500K" experiments).
	Size int
	// SmallSizes is the scaling ladder for Figures 11/13/17 and Table 2.
	SmallSizes []int
	// Profiles are ClassBench profile names; empty means all twelve.
	Profiles []string
	// TraceLen is the number of packets per generated trace (paper: 700K).
	TraceLen int
	// StanfordSize scales the four backbone rule-sets (paper: ~183K each).
	StanfordSize int
	// Seed drives trace generation.
	Seed int64
}

// DefaultConfig returns laptop-scale settings.
func DefaultConfig(w io.Writer) Config {
	return Config{
		W:            w,
		Size:         10000,
		SmallSizes:   []int{1000, 10000},
		Profiles:     nil,
		TraceLen:     20000,
		StanfordSize: 20000,
		Seed:         1,
	}
}

// Runner executes experiments, caching built rule-sets, classifiers, and
// engines across experiments (a full `-exp all` run reuses most builds).
type Runner struct {
	cfg      Config
	rsCache  map[string]*rules.RuleSet
	clsCache map[string]rules.Classifier
	trCache  map[string]*trace.Trace
}

// NewRunner returns a runner over the config.
func NewRunner(cfg Config) *Runner {
	if cfg.W == nil {
		panic("analysis: Config.W is required")
	}
	if cfg.Size <= 0 {
		cfg.Size = 10000
	}
	if cfg.TraceLen <= 0 {
		cfg.TraceLen = 20000
	}
	if cfg.StanfordSize <= 0 {
		cfg.StanfordSize = 20000
	}
	if len(cfg.SmallSizes) == 0 {
		cfg.SmallSizes = []int{1000, 10000}
	}
	return &Runner{
		cfg:      cfg,
		rsCache:  make(map[string]*rules.RuleSet),
		clsCache: make(map[string]rules.Classifier),
		trCache:  make(map[string]*trace.Trace),
	}
}

// Experiments lists the runnable experiment ids in paper order.
func Experiments() []string {
	return []string{
		"table1", "table2", "table3", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig17", "fields",
		"contention",
	}
}

// Run executes one experiment by id ("all" runs every one).
func (r *Runner) Run(exp string) error {
	switch exp {
	case "all":
		for _, e := range Experiments() {
			if err := r.Run(e); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Fprintln(r.cfg.W)
		}
		return nil
	case "table1":
		return r.Table1()
	case "table2":
		return r.Table2()
	case "table3":
		return r.Table3()
	case "fig7":
		return r.Fig7()
	case "fig8":
		return r.Fig8()
	case "fig9":
		return r.Fig9()
	case "fig10":
		return r.Fig10()
	case "fig11":
		return r.Fig11()
	case "fig12":
		return r.Fig12()
	case "fig13":
		return r.Fig13()
	case "fig14":
		return r.Fig14()
	case "fig15":
		return r.Fig15()
	case "fig17":
		return r.Fig17()
	case "fields":
		return r.Fields()
	case "contention":
		return r.Contention()
	default:
		return fmt.Errorf("analysis: unknown experiment %q (have %s)", exp, strings.Join(Experiments(), ", "))
	}
}

func (r *Runner) profiles() []classbench.Profile {
	all := classbench.Profiles()
	if len(r.cfg.Profiles) == 0 {
		return all
	}
	var out []classbench.Profile
	for _, name := range r.cfg.Profiles {
		for _, p := range all {
			if strings.EqualFold(p.Name, name) {
				out = append(out, p)
			}
		}
	}
	return out
}

func (r *Runner) ruleSet(p classbench.Profile, size int) *rules.RuleSet {
	key := fmt.Sprintf("%s/%d", p.Name, size)
	if rs, ok := r.rsCache[key]; ok {
		return rs
	}
	rs := classbench.Generate(p, size)
	r.rsCache[key] = rs
	return rs
}

func (r *Runner) uniformTrace(key string, rs *rules.RuleSet) *trace.Trace {
	if tr, ok := r.trCache[key]; ok {
		return tr
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	tr := trace.Uniform(rng, rs, r.cfg.TraceLen)
	r.trCache[key] = tr
	return tr
}

func (r *Runner) classifier(kind, key string, build func() (rules.Classifier, error)) (rules.Classifier, error) {
	ck := kind + "/" + key
	if c, ok := r.clsCache[ck]; ok {
		return c, nil
	}
	c, err := build()
	if err != nil {
		return nil, err
	}
	r.clsCache[ck] = c
	return c, nil
}

func (r *Runner) baseline(name, key string, rs *rules.RuleSet) (rules.Classifier, error) {
	return r.classifier("base-"+name, key, func() (rules.Classifier, error) {
		return BuildBaseline(name, rs)
	})
}

func (r *Runner) engine(baseline, key string, rs *rules.RuleSet) (*core.Engine, error) {
	c, err := r.classifier("nm-"+baseline, key, func() (rules.Classifier, error) {
		return BuildNM(baseline, rs)
	})
	if err != nil {
		return nil, err
	}
	return c.(*core.Engine), nil
}

// --- Table 1 -----------------------------------------------------------

// Table1 reproduces the vectorization table: per-lookup submodel inference
// time for batch widths 1, 4, and 8 (Go analogue of Serial/SSE/AVX; see
// DESIGN.md substitutions).
func (r *Runner) Table1() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Table 1: submodel inference time vs batch width (paper: Serial 126ns, SSE 62ns, AVX 49ns)")
	k := rqrmi.NewKernel(8, 7)
	keys := make([]uint32, 4096)
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	measure := func(f func() int) float64 {
		n := 0
		start := time.Now()
		for time.Since(start) < MinMeasure {
			n += f()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}
	var sink float64
	serial := measure(func() int {
		for _, key := range keys {
			sink += k.Eval1(key)
		}
		return len(keys)
	})
	var in4 [4]uint32
	var out4 [4]float64
	batch4 := measure(func() int {
		for i := 0; i+4 <= len(keys); i += 4 {
			copy(in4[:], keys[i:i+4])
			k.Eval4(&in4, &out4)
			sink += out4[0]
		}
		return len(keys)
	})
	var in8 [8]uint32
	var out8 [8]float64
	batch8 := measure(func() int {
		for i := 0; i+8 <= len(keys); i += 8 {
			copy(in8[:], keys[i:i+8])
			k.Eval8(&in8, &out8)
			sink += out8[0]
		}
		return len(keys)
	})
	// Ablation rows for the single-precision kernel of §4: the same 8-wide
	// batching in float32 (pure Go), and the hand-written AVX2 assembly —
	// the row that actually matches the paper's AVX measurement.
	var out8f [8]float32
	var sink32 float32
	batch8f32 := measure(func() int {
		for i := 0; i+8 <= len(keys); i += 8 {
			copy(in8[:], keys[i:i+8])
			k.Eval8F32(&in8, &out8f, false)
			sink32 += out8f[0]
		}
		return len(keys)
	})
	batch8asm := math.NaN()
	if rqrmi.HasAsmKernel() {
		batch8asm = measure(func() int {
			for i := 0; i+8 <= len(keys); i += 8 {
				copy(in8[:], keys[i:i+8])
				k.Eval8F32(&in8, &out8f, true)
				sink32 += out8f[0]
			}
			return len(keys)
		})
	}
	fmt.Fprintf(w, "  Batch width (floats/pass)  Serial(1)  Batch(4)  Batch(8)  Batch(8,f32)  AVX2(8,f32)\n")
	fmt.Fprintf(w, "  Inference Time (ns)        %9.1f  %8.1f  %8.1f  %12.1f  %11.1f   (sink %g)\n",
		serial, batch4, batch8, batch8f32, batch8asm, sink/1e18+float64(sink32)/1e18)
	return nil
}

// --- Table 2 -----------------------------------------------------------

// Table2 reproduces the iSet coverage table: cumulative coverage of 1–4
// iSets per rule-set size (mean ± std over the profiles) plus the Stanford
// backbone row.
func (r *Runner) Table2() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Table 2: iSet coverage (%) — cumulative over 1..4 iSets")
	fmt.Fprintf(w, "  %-10s %16s %16s %16s %16s\n", "rules", "1 iSet", "2 iSets", "3 iSets", "4 iSets")
	sizes := append(append([]int{}, r.cfg.SmallSizes...), r.cfg.Size)
	sizes = dedupInts(sizes)
	for _, size := range sizes {
		cov := make([][]float64, 4)
		for _, p := range r.profiles() {
			c := iset.CumulativeCoverage(r.ruleSet(p, size), 4)
			for k := 0; k < 4; k++ {
				cov[k] = append(cov[k], c[k]*100)
			}
		}
		fmt.Fprintf(w, "  %-10d", size)
		for k := 0; k < 4; k++ {
			m, s := MeanStd(cov[k])
			fmt.Fprintf(w, " %9.1f ± %4.1f", m, s)
		}
		fmt.Fprintln(w)
	}
	st := stanford.Generate(0, r.cfg.StanfordSize)
	c := iset.CumulativeCoverage(st, 4)
	fmt.Fprintf(w, "  %-10s", fmt.Sprintf("stanford/%d", r.cfg.StanfordSize))
	for k := 0; k < 4; k++ {
		fmt.Fprintf(w, " %9.1f       ", c[k]*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  (paper 500K row: 84.2 / 98.8 / 99.4 / 99.7; Stanford: 57.8 / 91.6 / 96.5 / 98.2)")
	return nil
}

// --- Table 3 -----------------------------------------------------------

// Table3 blends a ClassBench rule-set with low-diversity Cartesian-product
// rules and reports single-iSet coverage and throughput speedup over
// TupleMerge (§5.3.3).
func (r *Runner) Table3() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Table 3: low-diversity blends (paper: 70%→25%/1.07x, 50%→50%/1.14x, 30%→70%/1.60x)")
	fmt.Fprintf(w, "  %-22s %-12s %s\n", "% low diversity", "% coverage", "speedup (throughput)")
	base := r.ruleSet(classbench.Profiles()[0], r.cfg.Size)
	rng := rand.New(rand.NewSource(r.cfg.Seed))

	// Low-diversity pool: a Cartesian product of few values per field.
	pool := make([][]rules.Range, 5)
	for d := range pool {
		for v := 0; v < 8; v++ {
			pool[d] = append(pool[d], rules.ExactRange(uint32(1000+97*v)))
		}
	}
	for _, frac := range []float64{0.7, 0.5, 0.3} {
		rs := base.Clone()
		k := int(frac * float64(rs.Len()))
		for _, pos := range rng.Perm(rs.Len())[:k] {
			for d := 0; d < 5; d++ {
				rs.Rules[pos].Fields[d] = pool[d][rng.Intn(len(pool[d]))]
			}
		}
		part := iset.Build(rs, iset.Options{MaxISets: 1})
		cov := part.Coverage()

		tm, err := BuildBaseline(TM, rs)
		if err != nil {
			return err
		}
		nm, err := BuildNM(TM, rs)
		if err != nil {
			return err
		}
		tr := trace.Uniform(rng, rs, r.cfg.TraceLen)
		sp := Throughput1(nm, tr.Packets) / Throughput1(tm, tr.Packets)
		fmt.Fprintf(w, "  %-22.0f %-12.1f %.2fx\n", frac*100, cov*100, sp)
	}
	return nil
}

// --- Figure 7 ----------------------------------------------------------

// Fig7 plots the sustained-update model: throughput over time for a given
// update rate under periodic retraining (fast vs slow training) against the
// zero-training-time upper bound (§3.9).
func (r *Runner) Fig7() error {
	w := r.cfg.W
	p := classbench.Profiles()[0]
	rs := r.ruleSet(p, r.cfg.Size)
	key := fmt.Sprintf("%s/%d", p.Name, r.cfg.Size)
	tr := r.uniformTrace(key, rs)
	tm, err := r.baseline(TM, key, rs)
	if err != nil {
		return err
	}
	nm, err := r.engine(TM, key, rs)
	if err != nil {
		return err
	}
	tAcc := Throughput1(nm, tr.Packets)
	tRem := Throughput1(tm, tr.Packets)

	fmt.Fprintln(w, "Figure 7: throughput over time under updates (τ = retrain period)")
	fmt.Fprintf(w, "  accelerated %.0f pps, remainder-only %.0f pps, update rate = 1%% of rules per τ\n", tAcc, tRem)
	fmt.Fprintf(w, "  %-8s %-14s %-14s %-14s\n", "t/τ", "upper bound", "fast train", "long train")
	rate := 0.01 * float64(rs.Len()) // updates per τ
	for _, t := range []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4} {
		// Updates accumulated since the last retrain finished.
		upper := core.SustainedUpdateModel(float64(rs.Len()), rate*frac(t, 1), tAcc, tRem)
		fast := core.SustainedUpdateModel(float64(rs.Len()), rate*frac(t+0.25, 1.25), tAcc, tRem)
		long := core.SustainedUpdateModel(float64(rs.Len()), rate*frac(t+1, 2), tAcc, tRem)
		fmt.Fprintf(w, "  %-8.2f %-14.0f %-14.0f %-14.0f\n", t, upper, fast, long)
	}
	return nil
}

// frac returns t modulo period (sawtooth time since last retrain).
func frac(t, period float64) float64 {
	for t >= period {
		t -= period
	}
	return t
}

// --- Figures 8, 9, 17 --------------------------------------------------

// Fig8 reproduces the headline two-core comparison: latency and throughput
// speedups of NuevoMatch over each baseline per profile.
func (r *Runner) Fig8() error {
	return r.speedupFigure("Figure 8 (two cores)", []int{r.cfg.Size}, Baselines(), true)
}

// Fig9 is the single-core early-termination variant.
func (r *Runner) Fig9() error {
	return r.speedupFigure("Figure 9 (single core, early termination)", []int{r.cfg.Size}, Baselines(), false)
}

// Fig17 is the small-rule-set detail (1K and 10K) against cs and tm.
func (r *Runner) Fig17() error {
	return r.speedupFigure("Figure 17 (small rule-sets, two cores)", r.cfg.SmallSizes, []string{CS, TM}, true)
}

func (r *Runner) speedupFigure(title string, sizes []int, baselines []string, twoCore bool) error {
	w := r.cfg.W
	fmt.Fprintln(w, title+": NuevoMatch speedup per rule-set")
	for _, size := range sizes {
		fmt.Fprintf(w, "  --- %d rules ---\n", size)
		fmt.Fprintf(w, "  %-8s", "set")
		for _, b := range baselines {
			fmt.Fprintf(w, "  %8s-thr %8s-lat", b, b)
		}
		fmt.Fprintln(w)
		spThr := make(map[string][]float64)
		spLat := make(map[string][]float64)
		for _, p := range r.profiles() {
			rs := r.ruleSet(p, size)
			key := fmt.Sprintf("%s/%d", p.Name, size)
			tr := r.uniformTrace(key, rs)
			fmt.Fprintf(w, "  %-8s", p.Name)
			for _, b := range baselines {
				base, err := r.baseline(b, key, rs)
				if err != nil {
					return err
				}
				nm, err := r.engine(b, key, rs)
				if err != nil {
					return err
				}
				var thr, lat float64
				if twoCore {
					thr = Throughput2(nm, tr.Packets) / Throughput2(base, tr.Packets)
					lat = float64(Latency2(base, tr.Packets)) / float64(Latency2(nm, tr.Packets))
				} else {
					thr = Throughput1(nm, tr.Packets) / Throughput1(base, tr.Packets)
					lat = thr // identical on one core (§5.2)
				}
				spThr[b] = append(spThr[b], thr)
				spLat[b] = append(spLat[b], lat)
				fmt.Fprintf(w, "  %11.2fx %11.2fx", thr, lat)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  %-8s", "GM")
		for _, b := range baselines {
			fmt.Fprintf(w, "  %11.2fx %11.2fx", GeoMean(spThr[b]), GeoMean(spLat[b]))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// --- Figure 10 ---------------------------------------------------------

// Fig10 runs the Stanford backbone comparison: nm-with-tm vs tm on the four
// forwarding rule-sets (two-core configuration).
func (r *Runner) Fig10() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Figure 10: Stanford backbone (paper: ~3.5x throughput, ~7.5x latency)")
	fmt.Fprintf(w, "  %-6s %-14s %-16s %-10s %-12s %s\n", "set", "tm (pps)", "nm w/ tm (pps)", "thr-spd", "lat-spd", "coverage")
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	for si := 0; si < 4; si++ {
		rs := stanford.Generate(si, r.cfg.StanfordSize)
		tr := trace.Uniform(rng, rs, r.cfg.TraceLen)
		tm, err := BuildBaseline(TM, rs)
		if err != nil {
			return err
		}
		nm, err := BuildNM(TM, rs)
		if err != nil {
			return err
		}
		tb := Throughput2(tm, tr.Packets)
		tn := Throughput2(nm, tr.Packets)
		lb := Latency2(tm, tr.Packets)
		ln := Latency2(nm, tr.Packets)
		fmt.Fprintf(w, "  %-6d %-14.0f %-16.0f %-10.2f %-12.2f %.1f%%\n",
			si+1, tb, tn, tn/tb, float64(lb)/float64(ln), nm.Stats().Coverage*100)
	}
	return nil
}

// --- Figure 11 ---------------------------------------------------------

// Fig11 sweeps the rule count for one application (ACL1) and reports tm vs
// nm-with-tm throughput with memory annotations (remainder : total).
func (r *Runner) Fig11() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Figure 11: throughput vs number of rules (ACL1 family), tm vs nm w/ tm")
	fmt.Fprintf(w, "  %-10s %-14s %-14s %-10s %-12s %-18s\n", "rules", "tm (pps)", "nm (pps)", "speedup", "coverage", "KB (rem:total:tm)")
	p := classbench.Profiles()[0]
	sizes := dedupInts(append(append([]int{}, r.cfg.SmallSizes...), r.cfg.Size))
	for _, size := range sizes {
		rs := r.ruleSet(p, size)
		key := fmt.Sprintf("%s/%d", p.Name, size)
		tr := r.uniformTrace(key, rs)
		tm, err := r.baseline(TM, key, rs)
		if err != nil {
			return err
		}
		nm, err := r.engine(TM, key, rs)
		if err != nil {
			return err
		}
		tb := Throughput1(tm, tr.Packets)
		tn := Throughput1(nm, tr.Packets)
		st := nm.Stats()
		fmt.Fprintf(w, "  %-10d %-14.0f %-14.0f %-10.2f %-12.1f %.1f:%.1f:%.1f\n",
			size, tb, tn, tn/tb, st.Coverage*100,
			float64(nm.RemainderBytes())/1024,
			float64(nm.MemoryFootprint())/1024,
			float64(tm.MemoryFootprint())/1024)
	}
	return nil
}

// --- Figure 12 ---------------------------------------------------------

// Fig12 evaluates skewed traffic: Zipf presets, a CAIDA-like trace, and
// CAIDA* under cache pressure; speedups of nm over cs and tm (single core).
func (r *Runner) Fig12() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Figure 12: skewed traffic, nm speedup over cs and tm (single core)")
	fmt.Fprintf(w, "  %-10s %-14s %-14s\n", "trace", "nm w/ cs", "nm w/ tm")
	p := classbench.Profiles()[0]
	rs := r.ruleSet(p, r.cfg.Size)
	key := fmt.Sprintf("%s/%d", p.Name, r.cfg.Size)
	rng := rand.New(rand.NewSource(r.cfg.Seed))

	cs, err := r.baseline(CS, key, rs)
	if err != nil {
		return err
	}
	tm, err := r.baseline(TM, key, rs)
	if err != nil {
		return err
	}
	nmCS, err := r.engine(CS, key, rs)
	if err != nil {
		return err
	}
	nmTM, err := r.engine(TM, key, rs)
	if err != nil {
		return err
	}

	run := func(name string, pkts []rules.Packet, pressure bool) {
		var pr *CachePressure
		if pressure {
			pr = StartCachePressure(0, 0)
			defer pr.Stop()
		}
		spCS := Throughput1(nmCS, pkts) / Throughput1(cs, pkts)
		spTM := Throughput1(nmTM, pkts) / Throughput1(tm, pkts)
		fmt.Fprintf(w, "  %-10s %12.2fx %12.2fx\n", name, spCS, spTM)
	}
	for _, preset := range trace.SkewPresets() {
		tr, err := trace.Zipf(rng, rs, r.cfg.TraceLen, preset)
		if err != nil {
			return err
		}
		run(preset.Name, tr.Packets, false)
	}
	ctr, err := trace.CAIDALike(rng, rs, r.cfg.TraceLen, trace.CAIDAOptions{})
	if err != nil {
		return err
	}
	run("caida", ctr.Packets, false)
	run("caida*", ctr.Packets, true)
	return nil
}

// --- Figure 13 ---------------------------------------------------------

// Fig13 compares index memory: each baseline alone vs the NuevoMatch
// remainder plus iSet models (geometric mean over profiles).
func (r *Runner) Fig13() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Figure 13: index memory (bytes, GM over profiles)")
	fmt.Fprintf(w, "  %-10s", "rules")
	for _, b := range Baselines() {
		fmt.Fprintf(w, " %12s %12s %12s", b, "nm-rem("+b+")", "nm-isets")
	}
	fmt.Fprintln(w)
	sizes := dedupInts(append(append([]int{}, r.cfg.SmallSizes...), r.cfg.Size))
	for _, size := range sizes {
		fmt.Fprintf(w, "  %-10d", size)
		for _, b := range Baselines() {
			var alone, rem, isets []float64
			for _, p := range r.profiles() {
				rs := r.ruleSet(p, size)
				key := fmt.Sprintf("%s/%d", p.Name, size)
				base, err := r.baseline(b, key, rs)
				if err != nil {
					return err
				}
				nm, err := r.engine(b, key, rs)
				if err != nil {
					return err
				}
				alone = append(alone, float64(base.MemoryFootprint()))
				rem = append(rem, float64(nm.RemainderBytes()))
				isets = append(isets, float64(nm.RQRMIBytes()))
			}
			fmt.Fprintf(w, " %12.0f %12.0f %12.0f", GeoMean(alone), GeoMean(rem), GeoMean(isets))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// --- Figure 14 ---------------------------------------------------------

// Fig14 varies the number of iSets (0 = cs alone) and reports coverage plus
// the per-packet runtime breakdown (remainder, secondary search,
// validation, inference), averaged over the profiles.
func (r *Runner) Fig14() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Figure 14: coverage and runtime breakdown vs number of iSets (cs remainder)")
	fmt.Fprintf(w, "  %-7s %-10s %-12s %-12s %-12s %-12s %-10s\n",
		"iSets", "coverage", "remainder", "search", "validate", "inference", "total")
	p := classbench.Profiles()[0]
	rs := r.ruleSet(p, r.cfg.Size)
	key := fmt.Sprintf("%s/%d", p.Name, r.cfg.Size)
	tr := r.uniformTrace(key, rs)

	for k := 0; k <= 6; k++ {
		var e *core.Engine
		var err error
		if k == 0 {
			e, err = core.Build(rs, core.Options{MaxISets: -1, MinCoverage: 1.1, Remainder: remainderMust(CS)})
		} else {
			e, err = core.Build(rs, core.Options{MaxISets: k, MinCoverage: 0.01, Remainder: remainderMust(CS)})
		}
		if err != nil {
			return err
		}
		prof, _ := e.ProfileTrace(tr.Packets)
		rem, search, validate, infer := prof.PerPacket()
		fmt.Fprintf(w, "  %-7d %-10.1f %-12s %-12s %-12s %-12s %-10s\n",
			e.NumISets(), e.Stats().Coverage*100, rem, search, validate, infer,
			rem+search+validate+infer)
	}
	return nil
}

func remainderMust(name string) rules.Builder {
	b, err := remainderBuilder(name)
	if err != nil {
		panic(err)
	}
	return b
}

// --- Figure 15 ---------------------------------------------------------

// Fig15 measures RQ-RMI training time as a function of the maximum search
// distance bound, per rule-set size.
func (r *Runner) Fig15() error {
	w := r.cfg.W
	fmt.Fprintln(w, "Figure 15: training time vs max search distance bound")
	fmt.Fprintf(w, "  %-10s", "rules")
	bounds := []int{64, 128, 256, 512, 1024}
	for _, b := range bounds {
		fmt.Fprintf(w, " %10d", b)
	}
	fmt.Fprintln(w)
	p := classbench.Profiles()[0]
	sizes := dedupInts(append(append([]int{}, r.cfg.SmallSizes...), r.cfg.Size))
	for _, size := range sizes {
		rs := r.ruleSet(p, size)
		fmt.Fprintf(w, "  %-10d", size)
		for _, bound := range bounds {
			opt, err := NMOptions(TM, bound)
			if err != nil {
				return err
			}
			e, err := core.Build(rs, opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10s", e.Stats().TrainingTime.Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// --- §5.3.5 ------------------------------------------------------------

// Fields measures validation cost as the number of fields grows from 1 to
// 40 (the paper reports ~25ns at 1 field to ~180ns at 40, near-linear).
func (r *Runner) Fields() error {
	w := r.cfg.W
	fmt.Fprintln(w, "§5.3.5: validation time vs number of fields")
	fmt.Fprintf(w, "  %-8s %s\n", "fields", "ns/validation")
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	for _, d := range []int{1, 2, 5, 10, 20, 40} {
		rule := rules.Rule{Fields: make([]rules.Range, d)}
		pkts := make([]rules.Packet, 256)
		for i := range pkts {
			pkts[i] = make(rules.Packet, d)
		}
		for f := 0; f < d; f++ {
			lo := rng.Uint32() >> 1
			rule.Fields[f] = rules.Range{Lo: lo, Hi: lo + 1<<20}
			for i := range pkts {
				pkts[i][f] = lo + rng.Uint32()%(1<<20)
			}
		}
		n := 0
		matched := 0
		start := time.Now()
		for time.Since(start) < MinMeasure {
			for _, p := range pkts {
				if rule.Matches(p) {
					matched++
				}
			}
			n += len(pkts)
		}
		fmt.Fprintf(w, "  %-8d %.1f\n", d, float64(time.Since(start).Nanoseconds())/float64(n))
		if matched == 0 {
			return fmt.Errorf("analysis: validation benchmark packets never matched")
		}
	}
	return nil
}

// --- §5.2.1 contention --------------------------------------------------

// Contention measures the L3-pressure sensitivity of cs vs nm-with-cs
// (paper: cs loses ~50%, nm ~30%).
func (r *Runner) Contention() error {
	w := r.cfg.W
	p := classbench.Profiles()[0]
	rs := r.ruleSet(p, r.cfg.Size)
	key := fmt.Sprintf("%s/%d", p.Name, r.cfg.Size)
	tr := r.uniformTrace(key, rs)
	cs, err := r.baseline(CS, key, rs)
	if err != nil {
		return err
	}
	nm, err := r.engine(CS, key, rs)
	if err != nil {
		return err
	}
	csFree := Throughput1(cs, tr.Packets)
	nmFree := Throughput1(nm, tr.Packets)
	pr := StartCachePressure(0, 0)
	csLoad := Throughput1(cs, tr.Packets)
	nmLoad := Throughput1(nm, tr.Packets)
	pr.Stop()
	fmt.Fprintln(w, "§5.2.1: cache contention (paper: cs −50%, nm −30%)")
	fmt.Fprintf(w, "  %-10s %-14s %-14s %s\n", "system", "free (pps)", "contended", "slowdown")
	fmt.Fprintf(w, "  %-10s %-14.0f %-14.0f %.1f%%\n", "cs", csFree, csLoad, 100*(1-csLoad/csFree))
	fmt.Fprintf(w, "  %-10s %-14.0f %-14.0f %.1f%%\n", "nm w/ cs", nmFree, nmLoad, 100*(1-nmLoad/nmFree))
	return nil
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
