package analysis

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/serve"
	"nuevomatch/internal/trace"
)

// ServingReport measures the network serving tier over the artifact's
// profile: the same engine reached through nmserve's coalescing ingress
// versus called directly, so the section answers "what does the wire cost,
// and does coalescing recover batch throughput for independent clients?".
type ServingReport struct {
	Clients   int     `json:"clients"`
	Window    int     `json:"window"`
	BatchSize int     `json:"batch_size"`
	MaxDelayU float64 `json:"max_delay_us"`

	// Requests streamed and how many responses disagreed with the direct
	// engine answer (must be zero).
	Requests   int `json:"requests"`
	Mismatches int `json:"mismatches"`

	// CoalescedPPS is end-to-end serving throughput (TCP + coalescing +
	// batch inference); DirectBatchPPS is the same engine's in-process
	// LookupBatch throughput. Their ratio is the serving tier's efficiency.
	CoalescedPPS      float64 `json:"coalesced_pps"`
	DirectBatchPPS    float64 `json:"direct_batch_pps"`
	CoalescedVsDirect float64 `json:"coalesced_vs_direct"`

	// AvgBatchFill is how many requests the dispatcher actually packed per
	// inference batch; FillRatio normalizes by the batch size.
	AvgBatchFill float64 `json:"avg_batch_fill"`
	FillRatio    float64 `json:"fill_ratio"`

	// Client-observed end-to-end latency (send to response, pipelined).
	E2EP50US float64 `json:"e2e_p50_us"`
	E2EP99US float64 `json:"e2e_p99_us"`
}

// engineBackend adapts a bare core.Engine to serve.Backend: a standalone
// engine has no autopilot or shards, so it is unconditionally healthy.
type engineBackend struct{ *core.Engine }

func (engineBackend) Health() core.Health { return core.Health{State: core.Healthy} }

// AttachServing measures the serving tier with the given client count and
// records it in the artifact. clients <= 0 skips the section.
func (a *BenchArtifact) AttachServing(clients int, seed int64) error {
	if clients <= 0 {
		return nil
	}
	const (
		window   = 64
		batch    = BatchSize
		maxDelay = 50 * time.Microsecond
	)
	prof, err := classbench.ProfileByName(a.Profile)
	if err != nil {
		return err
	}
	rs := classbench.Generate(prof, a.Rules)
	rng := rand.New(rand.NewSource(seed))
	tr := trace.Uniform(rng, rs, a.TraceLen)

	e, err := BuildNM(TM, rs)
	if err != nil {
		return err
	}
	defer e.Close()

	// The engine itself is the reference: the artifact's conformance gate
	// already pinned batch == scalar == linear reference.
	expected := make([]int, len(tr.Packets))
	for i, p := range tr.Packets {
		expected[i] = e.Lookup(p)
	}
	direct := measureBatch(tr.Packets, batch, func(pkts []rules.Packet, out []int) {
		e.LookupBatch(pkts, out)
	})

	srv := serve.New(engineBackend{e}, serve.Config{
		Listen:    "127.0.0.1:0",
		BatchSize: batch,
		MaxDelay:  maxDelay,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	rep := &ServingReport{
		Clients:   clients,
		Window:    window,
		BatchSize: batch,
		MaxDelayU: float64(maxDelay) / float64(time.Microsecond),
		Requests:  len(tr.Packets),
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		lats      []float64
		firstErr  error
		mismatchN int
	)
	per := (len(tr.Packets) + clients - 1) / clients
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		lo := ci * per
		hi := min(lo+per, len(tr.Packets))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(pkts []rules.Packet, want []int) {
			defer wg.Done()
			bad, clats, err := streamPartition(srv.Addr().String(), pkts, want, window)
			mu.Lock()
			defer mu.Unlock()
			mismatchN += bad
			lats = append(lats, clats...)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}(tr.Packets[lo:hi], expected[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return fmt.Errorf("serving bench client: %w", firstErr)
	}

	rep.Mismatches = mismatchN
	rep.CoalescedPPS = float64(len(tr.Packets)) / elapsed.Seconds()
	rep.DirectBatchPPS = direct.ThroughputPPS
	if rep.DirectBatchPPS > 0 {
		rep.CoalescedVsDirect = rep.CoalescedPPS / rep.DirectBatchPPS
	}
	snap := srv.MetricsSnapshot()
	rep.AvgBatchFill = snap.AvgBatchFill()
	rep.FillRatio = rep.AvgBatchFill / float64(batch)
	sort.Float64s(lats)
	rep.E2EP50US, rep.E2EP99US = percentiles(lats)
	a.Serving = rep
	return nil
}

// streamPartition pipelines one partition through one connection,
// verifying every response and sampling client-side end-to-end latency in
// microseconds.
func streamPartition(addr string, pkts []rules.Packet, want []int, window int) (mismatches int, lats []float64, err error) {
	c, err := serve.Dial(addr)
	if err != nil {
		return 0, nil, err
	}
	defer c.Close()
	sent := make([]time.Time, len(pkts))
	lats = make([]float64, 0, len(pkts))
	next, inflight := 0, 0
	for next < len(pkts) || inflight > 0 {
		for next < len(pkts) && inflight < window {
			sent[next] = time.Now()
			if err := c.Send(uint32(next), pkts[next]); err != nil {
				return mismatches, lats, err
			}
			next++
			inflight++
		}
		if err := c.Flush(); err != nil {
			return mismatches, lats, err
		}
		for inflight > 0 {
			seq, got, rerr := c.Recv()
			if rerr != nil {
				return mismatches, lats, rerr
			}
			lats = append(lats, float64(time.Since(sent[seq]))/float64(time.Microsecond))
			if got != want[seq] {
				mismatches++
			}
			inflight--
			if next < len(pkts) && inflight < window/2 {
				break
			}
		}
	}
	return mismatches, lats, nil
}
