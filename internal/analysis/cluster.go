package analysis

import (
	"fmt"
	"math/rand"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/trace"
)

// ClusterReport is the sharded-serving section of the benchjson artifact:
// the same rule-set and trace measured through an N-shard core.Cluster,
// with per-shard structure and throughput next to the merged numbers so the
// artifact records both the fan-out win and the replication overhead that
// bought it. On a 1-CPU host the shards time-slice one core, so the merged
// ratio is report-only there; the acceptance ratio is read on multi-core
// runners.
type ClusterReport struct {
	// Shards is the serving width; Kind/PartitionField the routing function.
	Shards         int    `json:"shards"`
	Kind           string `json:"partition_kind"`
	PartitionField int    `json:"partition_field"`
	// BuildSeconds is the wall time of the parallel shard training.
	BuildSeconds float64 `json:"build_seconds"`
	// LiveRules counts distinct rules; ReplicatedRules of those live in more
	// than one shard; ShardRules counts per-shard rules, replicas included.
	LiveRules       int   `json:"live_rules"`
	ReplicatedRules int   `json:"replicated_rules"`
	ShardRules      []int `json:"shard_rules"`
	// PerShard is each shard measured alone on the packets that route to it
	// — the per-shard throughput floor the merge composes from.
	PerShard []ClusterShardPath `json:"per_shard"`
	// Lookup is the routed scalar path; LookupBatch the scatter/gather merge
	// path over the whole trace.
	Lookup      BenchPath `json:"lookup"`
	LookupBatch BenchPath `json:"lookup_batch"`
	// MergedVsSingleBatch is cluster LookupBatch throughput over the
	// single-engine LookupBatch throughput of the same artifact — the number
	// the sharding layer is accountable for (>= 1.3x on a multi-core
	// acceptance runner; report-only on one CPU).
	MergedVsSingleBatch float64 `json:"merged_vs_single_batch"`
	// VerifiedPackets/Mismatches are the differential check of the cluster
	// against the linear reference over the trace.
	VerifiedPackets int `json:"verified_packets"`
	Mismatches      int `json:"mismatches"`
	// Health is the cluster's serving condition at measurement end
	// ("healthy" unless a shard was quarantined or retrains failed mid-run,
	// which would make the throughput numbers suspect).
	Health string `json:"health"`
	// HealthReasons carries the machine-readable degradation signals when
	// Health is not "healthy".
	HealthReasons []core.HealthReason `json:"health_reasons,omitempty"`
}

// ClusterShardPath is one shard measured in isolation.
type ClusterShardPath struct {
	Rules int `json:"rules"`
	// TracePackets is how many of the trace's packets route to this shard.
	TracePackets int `json:"trace_packets"`
	// ThroughputPPS is the shard engine's batched throughput on its own
	// routed packets.
	ThroughputPPS float64 `json:"throughput_pps"`
}

// AttachCluster builds an N-shard cluster over the same profile the
// artifact measured and records the sharded numbers. shards <= 0 skips it;
// singleBatchPPS is the artifact's single-engine LookupBatch throughput the
// merged ratio is computed against.
func (a *BenchArtifact) AttachCluster(shards int, seed int64) error {
	if shards <= 0 {
		return nil
	}
	rep, err := RunClusterBench(a.Profile, a.Rules, shards, a.TraceLen, seed, a.LookupBatch.ThroughputPPS)
	if err != nil {
		return err
	}
	a.Cluster = rep
	return nil
}

// RunClusterBench builds the cluster and measures the routed scalar path,
// the merged batch path, and each shard alone, verifying every trace packet
// against the linear reference on the way.
func RunClusterBench(profileName string, size, shards, traceLen int, seed int64, singleBatchPPS float64) (*ClusterReport, error) {
	prof, err := classbench.ProfileByName(profileName)
	if err != nil {
		return nil, err
	}
	rs := classbench.Generate(prof, size)
	rng := rand.New(rand.NewSource(seed))
	tr := trace.Uniform(rng, rs, traceLen)

	opts, err := NMOptions(TM, 64)
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	c, err := core.BuildCluster(rs, core.ClusterOptions{
		Shards:         shards,
		PartitionField: core.AutoPartitionField,
		Kind:           core.PartitionRange,
		Engine:         opts,
	})
	if err != nil {
		return nil, fmt.Errorf("building cluster: %w", err)
	}
	defer c.Close()
	buildTime := time.Since(buildStart)

	st := c.Stats()
	rep := &ClusterReport{
		Shards:          st.Shards,
		Kind:            st.Kind.String(),
		PartitionField:  st.PartitionField,
		BuildSeconds:    buildTime.Seconds(),
		LiveRules:       st.LiveRules,
		ReplicatedRules: st.Replicated,
		ShardRules:      st.ShardRules,
	}

	// Differential check before timing anything: a fast wrong cluster is
	// worthless.
	for _, p := range tr.Packets {
		if c.Lookup(p) != rs.MatchID(p) {
			rep.Mismatches++
		}
	}
	rep.VerifiedPackets = len(tr.Packets)

	rep.Lookup = measureScalar(c, tr.Packets)
	rep.LookupBatch = measureBatch(tr.Packets, BatchSize, func(pkts []rules.Packet, out []int) {
		c.LookupBatch(pkts, out)
	})
	if singleBatchPPS > 0 {
		rep.MergedVsSingleBatch = rep.LookupBatch.ThroughputPPS / singleBatchPPS
	}

	// Each shard alone, on the packets that actually route to it.
	routed := routePackets(c, tr.Packets)
	for s := 0; s < st.Shards; s++ {
		sp := ClusterShardPath{Rules: st.ShardRules[s], TracePackets: len(routed[s])}
		if len(routed[s]) >= 64 {
			eng := c.ShardEngine(s)
			sp.ThroughputPPS = measureBatch(routed[s], BatchSize, func(pkts []rules.Packet, out []int) {
				eng.LookupBatch(pkts, out)
			}).ThroughputPPS
		}
		rep.PerShard = append(rep.PerShard, sp)
	}
	h := c.Health()
	rep.Health = h.State.String()
	rep.HealthReasons = h.Reasons
	return rep, nil
}

// routePackets groups the trace by serving shard, using the cluster's own
// batch path output ordering (scatter without gather).
func routePackets(c *core.Cluster, pkts []rules.Packet) [][]rules.Packet {
	routed := make([][]rules.Packet, c.NumShards())
	for _, p := range pkts {
		s := c.RouteShard(p)
		if s >= 0 {
			routed[s] = append(routed[s], p)
		}
	}
	return routed
}
