package analysis

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nuevomatch/internal/classbench"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/trace"
)

// The churn experiment: a sustained interleaved insert/delete/lookup
// workload driven against an autopilot-supervised engine, measuring what the
// §3.9 online-update story looks like when retraining is autonomous — how
// often the drift policy trips, how long the hot swaps hold the write lock,
// and whether concurrent lookups ever stall (they must not: the swap is one
// atomic snapshot store behind the lock-free read path). Results are
// embedded in the benchjson perf artifact so the retrain trajectory is
// tracked across PRs alongside raw lookup throughput.

// ChurnConfig parameterizes RunChurn.
type ChurnConfig struct {
	// Profiles are the ClassBench profiles to churn; default acl1, fw1, ipc1.
	Profiles []string
	// Size is the built rule count per profile (default 2000).
	Size int
	// Ops is the number of interleaved operations per profile, ~60% lookups
	// and ~40% updates (default 20000).
	Ops int
	// Seed drives the workload mix.
	Seed int64
	// Policy is the autopilot trigger policy; the zero value uses
	// MaxUpdates = Size (one retrain per ~50% churn) with a 2ms poll.
	Policy core.AutopilotPolicy
	// Verify checks every driver lookup against the linear reference
	// (default on; the experiment doubles as a conformance run).
	Verify bool
}

// DefaultChurnConfig returns the standard artifact configuration.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Profiles: []string{"acl1", "fw1", "ipc1"},
		Size:     2000,
		Ops:      20000,
		Seed:     1,
		Verify:   true,
	}
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	d := DefaultChurnConfig()
	if c.Profiles == nil {
		c.Profiles = d.Profiles
	}
	if c.Size == 0 {
		c.Size = d.Size
	}
	if c.Ops == 0 {
		c.Ops = d.Ops
	}
	// The policy struct carries a func field (AfterRetrain) and cannot be
	// compared wholesale; an all-zero trigger set means "unset".
	if c.Policy.MaxUpdates == 0 && c.Policy.MaxRemainderFraction == 0 &&
		c.Policy.MaxOverlayCompactions == 0 && c.Policy.MinLiveRules == 0 &&
		c.Policy.MinInterval == 0 && c.Policy.Interval == 0 && c.Policy.AfterRetrain == nil {
		// Trigger on update counts only: the coverage trigger's trip points
		// depend on each profile's achievable coverage, and the artifact
		// should count deterministic drift-driven retrains.
		c.Policy = core.AutopilotPolicy{
			MaxUpdates:            c.Size / 2,
			MaxRemainderFraction:  -1,
			MaxOverlayCompactions: -1,
			MinLiveRules:          1,
			Interval:              2 * time.Millisecond,
		}
	}
	return c
}

// LatencyStats summarizes one latency sample population in nanoseconds.
type LatencyStats struct {
	Samples int     `json:"samples"`
	P50     float64 `json:"p50_ns"`
	P99     float64 `json:"p99_ns"`
	Max     float64 `json:"max_ns"`
}

func latencyStats(samples []float64) LatencyStats {
	st := LatencyStats{Samples: len(samples)}
	if len(samples) == 0 {
		return st
	}
	sort.Float64s(samples)
	st.P50, st.P99 = percentiles(samples)
	st.Max = samples[len(samples)-1]
	return st
}

// ChurnProfileResult is one profile's churn run.
type ChurnProfileResult struct {
	Profile string `json:"profile"`
	Rules   int    `json:"rules"`
	Ops     int    `json:"ops"`
	Lookups int    `json:"lookups"`
	Inserts int    `json:"inserts"`
	Deletes int    `json:"deletes"`

	// Retrains is the number of automatic in-place retrains the autopilot
	// performed; Replayed the journaled updates absorbed across their swaps.
	Retrains int    `json:"retrains"`
	Replayed int    `json:"replayed_updates"`
	Failures int    `json:"retrain_failures"`
	Trigger  string `json:"last_trigger"`

	// TrainTotalNanos is total background training time; SwapMaxNanos the
	// longest any swap held the write lock (the update-side stall bound —
	// lookups are never blocked).
	TrainTotalNanos float64 `json:"train_total_ns"`
	SwapMaxNanos    float64 `json:"swap_max_ns"`

	// Probe reports the latency of a concurrent lookup goroutine sampled
	// across the whole run, retrains included — the availability statement:
	// Max staying in lookup-scale territory means no reader ever stalled on
	// a swap.
	Probe LatencyStats `json:"probe"`

	// Mismatches counts verified lookups that disagreed with the linear
	// reference. Anything but zero is a correctness bug.
	Mismatches int `json:"mismatches"`

	// RemainderFractionEnd is the drift left after the final state (the
	// autopilot keeps it below the policy's ceiling).
	RemainderFractionEnd float64 `json:"remainder_fraction_end"`
}

// ChurnReport aggregates the churn experiment.
type ChurnReport struct {
	Size          int                  `json:"size"`
	OpsPerProfile int                  `json:"ops_per_profile"`
	TotalOps      int                  `json:"total_ops"`
	TotalRetrains int                  `json:"total_retrains"`
	Mismatches    int                  `json:"mismatches"`
	Profiles      []ChurnProfileResult `json:"profiles"`
}

// RunChurn executes the churn experiment.
func RunChurn(cfg ChurnConfig) (*ChurnReport, error) {
	cfg = cfg.withDefaults()
	rep := &ChurnReport{Size: cfg.Size, OpsPerProfile: cfg.Ops}
	for pi, name := range cfg.Profiles {
		res, err := runChurnProfile(cfg, name, cfg.Seed+int64(pi))
		if err != nil {
			return nil, fmt.Errorf("churn %s: %w", name, err)
		}
		rep.Profiles = append(rep.Profiles, *res)
		rep.TotalOps += res.Ops
		rep.TotalRetrains += res.Retrains
		rep.Mismatches += res.Mismatches
	}
	return rep, nil
}

func runChurnProfile(cfg ChurnConfig, name string, seed int64) (*ChurnProfileResult, error) {
	prof, err := classbench.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	// Built rules take even priorities, the insert pool odd ones: every rule
	// ever live has a unique priority, so the linear reference is exact.
	poolSize := cfg.Ops/2 + 16
	all := classbench.Generate(prof, cfg.Size+poolSize)
	base := rules.NewRuleSet(all.NumFields)
	for i := 0; i < cfg.Size; i++ {
		r := all.Rules[i]
		r.Priority = int32(2 * (i + 1))
		base.Add(r)
	}
	pool := make([]rules.Rule, 0, poolSize)
	for i := cfg.Size; i < cfg.Size+poolSize; i++ {
		r := all.Rules[i]
		r.ID = 1_000_000 + i
		r.Priority = int32(2*(i-cfg.Size) + 1)
		pool = append(pool, r)
	}

	e, err := BuildNM(TM, base)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	mirror := base.Clone()

	ap := core.NewAutopilot(e, cfg.Policy)
	ap.Start()
	defer ap.Stop()

	// Concurrent availability prober: uniform trace lookups sampled across
	// the whole run, hot swaps included.
	rng := rand.New(rand.NewSource(seed))
	tr := trace.Uniform(rng, base, 4096)
	var stopProbe atomic.Bool
	var wg sync.WaitGroup
	var probeSamples []float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Check-after-probe so at least one sample lands even when a
		// single-CPU scheduler never runs this goroutine until the churn
		// loop has already finished and raised stopProbe.
		for i := 0; ; i++ {
			p := tr.Packets[i%len(tr.Packets)]
			t0 := time.Now()
			e.Lookup(p)
			if i%4 == 0 && len(probeSamples) < 1<<20 {
				probeSamples = append(probeSamples, float64(time.Since(t0).Nanoseconds()))
			}
			if stopProbe.Load() {
				return
			}
		}
	}()

	res := &ChurnProfileResult{Profile: name, Rules: cfg.Size}
	for res.Ops < cfg.Ops {
		res.Ops++
		switch x := rng.Float64(); {
		case x < 0.60:
			res.Lookups++
			p := churnPacket(rng, mirror)
			got := e.Lookup(p)
			if cfg.Verify && got != mirror.MatchID(p) {
				res.Mismatches++
			}
		case x < 0.80 && len(pool) > 0:
			r := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			if err := e.Insert(r); err != nil {
				return nil, err
			}
			mirror.Add(r)
			res.Inserts++
		default:
			if mirror.Len() <= 16 {
				continue
			}
			i := rng.Intn(mirror.Len())
			if err := e.Delete(mirror.Rules[i].ID); err != nil {
				return nil, err
			}
			mirror.Rules[i] = mirror.Rules[mirror.Len()-1]
			mirror.Rules = mirror.Rules[:mirror.Len()-1]
			res.Deletes++
		}
	}
	// The watcher is asynchronous; if the final drift tranche has not been
	// polled yet, force one check so short runs still report a retrain.
	if ap.Stats().Retrains == 0 {
		if _, err := ap.Check(); err != nil {
			return nil, err
		}
	}
	stopProbe.Store(true)
	wg.Wait()
	ap.Stop()

	st := ap.Stats()
	res.Retrains = st.Retrains
	res.Replayed = st.Replayed
	res.Failures = st.Failures
	res.Trigger = st.LastTrigger
	res.TrainTotalNanos = float64(st.TotalTrain.Nanoseconds())
	res.SwapMaxNanos = float64(st.MaxSwap.Nanoseconds())
	res.Probe = latencyStats(probeSamples)
	res.RemainderFractionEnd = e.Updates().RemainderFraction
	return res, nil
}

// churnPacket draws a probe biased toward matching a live rule.
func churnPacket(rng *rand.Rand, mirror *rules.RuleSet) rules.Packet {
	p := make(rules.Packet, mirror.NumFields)
	if mirror.Len() > 0 && rng.Intn(4) != 0 {
		classbench.FillMatchingPacket(rng, &mirror.Rules[rng.Intn(mirror.Len())], p)
		return p
	}
	for i := range p {
		p[i] = rng.Uint32()
	}
	return p
}
