package analysis

import (
	"runtime"
	"sync/atomic"
)

// CachePressure emulates the L3 contention experiments of §5.2 (the CAIDA*
// column of Figure 12 and the 1.5MB-CAT experiment of §5.2.1). The paper
// restricts the L3 slice with Intel's Cache Allocation Technology; that
// hardware knob is unavailable from userspace Go, so contention is produced
// the way CAT models it: co-running threads continuously stream a working
// set through the shared cache, evicting the classifier's lines.
type CachePressure struct {
	stop    atomic.Bool
	done    chan struct{}
	workers int
	// Sink defeats dead-code elimination of the scan loops.
	Sink uint64
}

// StartCachePressure launches workers goroutines each streaming over a
// private buffer of workingSet bytes. Call Stop when done.
func StartCachePressure(workers, workingSet int) *CachePressure {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 1 {
			workers = 1
		}
	}
	if workingSet <= 0 {
		workingSet = 16 << 20
	}
	p := &CachePressure{done: make(chan struct{}), workers: workers}
	for w := 0; w < workers; w++ {
		go func(seed int) {
			buf := make([]uint64, workingSet/8)
			var acc uint64
			i := seed
			for !p.stop.Load() {
				// Stride of 8 words = one cache line per access.
				for j := 0; j < len(buf); j += 8 {
					acc += buf[j]
					buf[j] = acc
				}
				i++
			}
			atomic.AddUint64(&p.Sink, acc)
			p.done <- struct{}{}
		}(w)
	}
	return p
}

// Stop terminates the pressure workers and waits for them.
func (p *CachePressure) Stop() {
	p.stop.Store(true)
	for w := 0; w < p.workers; w++ {
		<-p.done
	}
}
