package analysis

import (
	"testing"
	"time"

	"nuevomatch/internal/core"
)

func TestRunChurnSmall(t *testing.T) {
	cfg := ChurnConfig{
		Profiles: []string{"acl1", "ipc1"},
		Size:     300,
		Ops:      3000,
		Seed:     3,
		Verify:   true,
		Policy: core.AutopilotPolicy{
			MaxUpdates:   250,
			MinLiveRules: 1,
			Interval:     time.Millisecond,
		},
	}
	rep, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Profiles) != 2 || rep.TotalOps != 6000 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("churn produced %d lookup mismatches against the linear reference", rep.Mismatches)
	}
	if rep.TotalRetrains < 1 {
		t.Fatalf("autopilot never retrained: %+v", rep)
	}
	for _, p := range rep.Profiles {
		if p.Failures != 0 {
			t.Errorf("%s: %d retrain failures", p.Profile, p.Failures)
		}
		if p.Inserts == 0 || p.Deletes == 0 || p.Lookups == 0 {
			t.Errorf("%s: degenerate workload mix: %+v", p.Profile, p)
		}
		if p.Probe.Samples == 0 {
			t.Errorf("%s: availability prober collected no samples", p.Profile)
		}
	}
}
