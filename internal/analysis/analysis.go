// Package analysis is the evaluation harness: it builds the paper's
// classifier configurations, measures throughput/latency/memory the way §5.1
// describes (uniform and skewed traces, single-core with early termination,
// two-core parallel with batching), and regenerates every table and figure
// of the evaluation as text. cmd/benchrunner is a thin CLI over this
// package; bench_test.go wires the same experiments into testing.B.
package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nuevomatch/internal/classifiers/cutsplit"
	"nuevomatch/internal/classifiers/neurocuts"
	"nuevomatch/internal/classifiers/tuplemerge"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
)

// Baseline names used throughout the evaluation (§5.1 notation).
const (
	CS = "cs" // CutSplit
	NC = "nc" // NeuroCuts
	TM = "tm" // TupleMerge
)

// Baselines lists the three baselines in paper order.
func Baselines() []string { return []string{CS, NC, TM} }

// BuildBaseline constructs a stand-alone baseline classifier with the
// paper's evaluated configuration (§5.1).
func BuildBaseline(name string, rs *rules.RuleSet) (rules.Classifier, error) {
	switch name {
	case CS:
		return cutsplit.New(rs, cutsplit.DefaultConfig()), nil
	case NC:
		return neurocuts.New(rs, neurocuts.DefaultConfig()), nil
	case TM:
		return tuplemerge.New(rs, tuplemerge.DefaultConfig()), nil
	default:
		return nil, fmt.Errorf("analysis: unknown baseline %q", name)
	}
}

// remainderBuilder returns the rules.Builder for a baseline name.
func remainderBuilder(name string) (rules.Builder, error) {
	switch name {
	case CS:
		return cutsplit.Build, nil
	case NC:
		return neurocuts.Build, nil
	case TM:
		return tuplemerge.Build, nil
	default:
		return nil, fmt.Errorf("analysis: unknown baseline %q", name)
	}
}

// NMOptions returns the NuevoMatch build options the paper pairs with each
// baseline: 25% minimum iSet coverage and 1–2 iSets against cs/nc, 5% and 4
// iSets against tm (§5.1), error threshold 64.
func NMOptions(baseline string, targetError int) (core.Options, error) {
	rem, err := remainderBuilder(baseline)
	if err != nil {
		return core.Options{}, err
	}
	opt := core.Options{Remainder: rem, RQRMI: rqrmi.Config{TargetError: targetError}}
	switch baseline {
	case TM:
		opt.MaxISets = 4
		opt.MinCoverage = 0.05
	default:
		opt.MaxISets = 2
		opt.MinCoverage = 0.25
	}
	return opt, nil
}

// BuildNM trains NuevoMatch with the given baseline as remainder.
func BuildNM(baseline string, rs *rules.RuleSet) (*core.Engine, error) {
	opt, err := NMOptions(baseline, 64)
	if err != nil {
		return nil, err
	}
	return core.Build(rs, opt)
}

// --- measurement ------------------------------------------------------

// MinMeasure is the minimum duration a throughput measurement spins for.
var MinMeasure = 200 * time.Millisecond

// Throughput1 measures single-core packets/second of plain Lookup over the
// trace, repeating it until MinMeasure has elapsed (after one warmup pass,
// §5.1.1's warmup protocol condensed).
func Throughput1(c rules.Classifier, pkts []rules.Packet) float64 {
	for _, p := range pkts { // warmup
		c.Lookup(p)
	}
	var done int
	start := time.Now()
	for time.Since(start) < MinMeasure {
		for _, p := range pkts {
			c.Lookup(p)
		}
		done += len(pkts)
	}
	return float64(done) / time.Since(start).Seconds()
}

// Latency1 is the single-core per-packet latency; with one core it is the
// reciprocal of throughput (§5.2 "for the single core execution the latency
// and the throughput speedups are the same").
func Latency1(c rules.Classifier, pkts []rules.Packet) time.Duration {
	pps := Throughput1(c, pkts)
	if pps == 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / pps)
}

// BatchSize is the paper's two-core batching factor (§5.1).
const BatchSize = 128

// Throughput2 measures the two-core configuration of §5.1: NuevoMatch
// engines split the *work* of each batch (iSets on one worker, remainder on
// the other) via LookupBatchParallel; baseline classifiers run two instances
// on two goroutines, splitting the input equally.
func Throughput2(c rules.Classifier, pkts []rules.Packet) float64 {
	if e, ok := c.(*core.Engine); ok {
		out := make([]int, BatchSize)
		// Warmup.
		for off := 0; off+BatchSize <= len(pkts) && off < 4*BatchSize; off += BatchSize {
			e.LookupBatchParallel(pkts[off:off+BatchSize], out)
		}
		var done int
		start := time.Now()
		for time.Since(start) < MinMeasure {
			for off := 0; off+BatchSize <= len(pkts); off += BatchSize {
				e.LookupBatchParallel(pkts[off:off+BatchSize], out)
			}
			done += len(pkts) / BatchSize * BatchSize
		}
		return float64(done) / time.Since(start).Seconds()
	}

	half := len(pkts) / 2
	for _, p := range pkts[:half] { // warmup
		c.Lookup(p)
	}
	var done int
	start := time.Now()
	for time.Since(start) < MinMeasure {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range pkts[:half] {
				c.Lookup(p)
			}
		}()
		for _, p := range pkts[half:] {
			c.Lookup(p)
		}
		wg.Wait()
		done += len(pkts)
	}
	return float64(done) / time.Since(start).Seconds()
}

// Latency2 measures per-packet latency in the two-core configuration: for
// NuevoMatch the batch completes when both workers finish (latency = batch
// time / batch size); for baselines parallel instances do not shorten a
// single packet's path, so latency equals the single-core value.
func Latency2(c rules.Classifier, pkts []rules.Packet) time.Duration {
	if e, ok := c.(*core.Engine); ok {
		out := make([]int, BatchSize)
		for off := 0; off+BatchSize <= len(pkts) && off < 4*BatchSize; off += BatchSize {
			e.LookupBatchParallel(pkts[off:off+BatchSize], out)
		}
		var batches int
		start := time.Now()
		for time.Since(start) < MinMeasure {
			for off := 0; off+BatchSize <= len(pkts); off += BatchSize {
				e.LookupBatchParallel(pkts[off:off+BatchSize], out)
			}
			batches += len(pkts) / BatchSize
		}
		return time.Since(start) / time.Duration(batches*BatchSize)
	}
	return Latency1(c, pkts)
}

// GeoMean returns the geometric mean of positive values (the paper's "GM"
// columns); non-positive values are skipped.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// MeanStd returns mean and standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// SampleRuleSet thins a rule-set to at most n rules, preserving order, so
// large-scale experiments can be laptop-scaled without changing structure.
func SampleRuleSet(rng *rand.Rand, rs *rules.RuleSet, n int) *rules.RuleSet {
	if rs.Len() <= n {
		return rs
	}
	idx := rng.Perm(rs.Len())[:n]
	sort.Ints(idx)
	return rs.Subset(idx)
}
