package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	Reset()
	if err := Hit("nothing.armed"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	Sleep("nothing.armed")
	if Armed() {
		t.Fatal("Armed() true with no points")
	}
}

func TestAlwaysTrigger(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Rule{})
	for i := 0; i < 3; i++ {
		if err := Hit("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("visit %d: got %v, want ErrInjected", i, err)
		}
	}
	if got := Triggered("p"); got != 3 {
		t.Fatalf("Triggered = %d, want 3", got)
	}
	if got := Visits("p"); got != 3 {
		t.Fatalf("Visits = %d, want 3", got)
	}
}

func TestSkipFirstAndFailCount(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Rule{SkipFirst: 2, FailCount: 1})
	var errs []error
	for i := 0; i < 5; i++ {
		errs = append(errs, Hit("p"))
	}
	want := []bool{false, false, true, false, false}
	for i, w := range want {
		if (errs[i] != nil) != w {
			t.Fatalf("visit %d: err=%v, want triggered=%v", i, errs[i], w)
		}
	}
	if got := Triggered("p"); got != 1 {
		t.Fatalf("Triggered = %d, want 1", got)
	}
}

func TestCustomError(t *testing.T) {
	Reset()
	defer Reset()
	custom := errors.New("disk on fire")
	Enable("p", Rule{Err: custom})
	if err := Hit("p"); !errors.Is(err, custom) {
		t.Fatalf("got %v, want custom error", err)
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	run := func() []bool {
		Enable("p", Rule{Probability: 0.5, Seed: 42})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Hit("p") != nil
		}
		return out
	}
	a, b := run(), run()
	var trig int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d diverged between identically-seeded runs", i)
		}
		if a[i] {
			trig++
		}
	}
	if trig == 0 || trig == len(a) {
		t.Fatalf("probability 0.5 triggered %d/%d times", trig, len(a))
	}
}

func TestPureDelayFault(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Rule{Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatalf("pure delay fault returned error %v", err)
	}
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("delay fault slept only %v", d)
	}
	Sleep("p")
	if got := Triggered("p"); got != 2 {
		t.Fatalf("Triggered = %d, want 2", got)
	}
}

func TestOnTrigger(t *testing.T) {
	Reset()
	defer Reset()
	var fired []Point
	Enable("p", Rule{OnTrigger: func(name Point) { fired = append(fired, name) }})
	Hit("p")
	if len(fired) != 1 || fired[0] != "p" {
		t.Fatalf("OnTrigger fired = %v", fired)
	}
}

func TestDisableAndReset(t *testing.T) {
	Reset()
	Enable("a", Rule{})
	Enable("b", Rule{})
	if !Armed() {
		t.Fatal("Armed() false after Enable")
	}
	Disable("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("disabled point triggered: %v", err)
	}
	if err := Hit("b"); err == nil {
		t.Fatal("still-armed point did not trigger")
	}
	Reset()
	if Armed() {
		t.Fatal("Armed() true after Reset")
	}
	if err := Hit("b"); err != nil {
		t.Fatalf("point survived Reset: %v", err)
	}
}
