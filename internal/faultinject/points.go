package faultinject

// Point names one fault-injection site. All points are declared below, in
// this file only — it is the single registry the nmlint faultpoint analyzer
// checks call sites against, so a typo'd name cannot silently arm nothing:
// Hit/Sleep/Enable/Disable reject raw strings at lint time unless they
// reference one of these constants. (The compiler alone cannot enforce
// this: an untyped string constant converts to Point implicitly.)
//
// Naming convention: dot-separated, coarse-to-fine —
// <layer>.<subsystem>.<operation>[.<step>].
type Point string

const (
	// PointTableSave fires inside Table.SaveFile before the artifact is
	// written; persistence tests use it to fail autopilot persists.
	PointTableSave Point = "table.save"

	// PointRetrainBuild fires at the start of a retrain's off-lock build
	// phase, before any training happens.
	PointRetrainBuild Point = "core.retrain.build"

	// PointRetrainReplay fires before the retrain journal replays onto the
	// freshly trained replacement engine.
	PointRetrainReplay Point = "core.retrain.replay"

	// PointCodecWrite fires at the head of the engine codec's WriteTo.
	PointCodecWrite Point = "core.codec.write"

	// PointCodecRead fires at the head of the engine codec's ReadTable.
	PointCodecRead Point = "core.codec.read"

	// PointClusterShardSlow is a latency point (Sleep) in the cluster's
	// batched lookup dispatch, modeling a shard that answers late.
	PointClusterShardSlow Point = "core.cluster.shard.slow"

	// PointClusterSaveShard fires before each shard artifact write of a
	// generation save.
	PointClusterSaveShard Point = "core.cluster.save.shard"

	// PointClusterSaveRules fires before the rules fallback artifact write
	// of a generation save.
	PointClusterSaveRules Point = "core.cluster.save.rules"

	// PointClusterSaveManifest fires before the manifest write of a
	// generation save.
	PointClusterSaveManifest Point = "core.cluster.save.manifest"

	// PointClusterSaveSync fires before the staged generation directory is
	// fsynced.
	PointClusterSaveSync Point = "core.cluster.save.sync"

	// PointClusterSaveRename fires before the staged directory's atomic
	// rename into place.
	PointClusterSaveRename Point = "core.cluster.save.rename"

	// PointClusterSaveCurrent fires before the CURRENT pointer flips to the
	// new generation.
	PointClusterSaveCurrent Point = "core.cluster.save.current"

	// PointClusterLoadShard fires before each shard artifact read of a
	// cluster load; corruption faults here drive the quarantine-on-load
	// fallback.
	PointClusterLoadShard Point = "core.cluster.load.shard"
)
