// Package faultinject is a deterministic fault-injection framework for
// tests and chaos harnesses.
//
// Production code declares named fault points by calling Hit (for error
// injection) or Sleep (for latency injection) at interesting places:
//
//	if err := faultinject.Hit("core.cluster.save.shard"); err != nil {
//		return err
//	}
//
// When nothing is armed — the production steady state — Hit and Sleep are
// a single atomic load and return immediately, so fault points are safe
// to leave in hot paths. Tests arm points with Enable, providing a Rule
// that decides deterministically (skip counts, fail counts, probability
// under a seeded RNG) whether each visit triggers.
//
// The registry is process-global, like net/http/httptest servers or
// runtime/debug settings: chaos tests that arm points must not run in
// parallel with other tests exercising the same code paths. Reset
// restores the zero state.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by triggered fault points.
// Code under test can detect it with errors.Is to distinguish injected
// faults from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule decides when an armed fault point triggers and what it does.
// The zero value triggers on every visit with ErrInjected.
type Rule struct {
	// SkipFirst visits pass through untriggered. This schedules a fault
	// at a precise step: SkipFirst=3 arms the 4th visit.
	SkipFirst int

	// FailCount limits how many visits trigger; after that the point
	// disarms itself. 0 means unlimited.
	FailCount int

	// Probability, if in (0,1), makes each eligible visit trigger with
	// that probability under a rand.Rand seeded with Seed. 0 or >=1
	// means always trigger (once past SkipFirst).
	Probability float64

	// Seed seeds the per-point RNG used by Probability. Two runs with
	// the same schedule and seeds behave identically.
	Seed int64

	// Err is the error returned when the point triggers. nil means
	// ErrInjected. Ignored by Sleep points.
	Err error

	// Delay, if nonzero, makes a triggered visit sleep instead of (for
	// Hit) or in addition to nothing (for Sleep). Hit points with a
	// Delay and a nil Err sleep and return nil — pure latency faults.
	Delay time.Duration

	// OnTrigger, if set, is invoked synchronously on every trigger —
	// kill-point sweeps use it to panic or snapshot mid-operation.
	OnTrigger func(name Point)
}

type point struct {
	rule      Rule
	rng       *rand.Rand
	visits    int // total visits since armed
	triggered int // triggered visits since armed
}

var (
	// armed is the fast-path gate: 0 means no points are armed anywhere
	// and Hit/Sleep return after a single atomic load.
	armed  atomic.Int32
	mu     sync.Mutex
	points map[Point]*point
)

// Enable arms the named fault point with the given rule, replacing any
// existing rule and resetting its counters.
func Enable(name Point, r Rule) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[Point]*point)
	}
	p := &point{rule: r}
	if r.Probability > 0 && r.Probability < 1 {
		p.rng = rand.New(rand.NewSource(r.Seed))
	}
	if _, existed := points[name]; !existed {
		armed.Add(1)
	}
	points[name] = p
}

// Disable disarms the named fault point. Disarming an unarmed point is
// a no-op.
func Disable(name Point) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every fault point and restores the zero state.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(0)
	points = nil
}

// Triggered reports how many times the named point has triggered since
// it was armed. Returns 0 for unarmed points.
func Triggered(name Point) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.triggered
	}
	return 0
}

// Visits reports how many times the named point has been visited since
// it was armed (whether or not it triggered). Returns 0 for unarmed
// points.
func Visits(name Point) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.visits
	}
	return 0
}

// Hit visits the named fault point. If the point is unarmed (the
// production steady state) it returns nil after one atomic load. If the
// point's rule triggers, Hit sleeps rule.Delay (if any), runs OnTrigger
// (if any), and returns rule.Err (ErrInjected when nil, unless the rule
// is a pure Delay fault, which returns nil).
func Hit(name Point) error {
	if armed.Load() == 0 {
		return nil
	}
	trig, r := visit(name)
	if !trig {
		return nil
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.OnTrigger != nil {
		r.OnTrigger(name)
	}
	if r.Err != nil {
		return r.Err
	}
	if r.Delay > 0 {
		return nil // pure latency fault
	}
	return ErrInjected
}

// Sleep visits the named fault point as a pure latency point: a trigger
// sleeps rule.Delay and never returns an error. Used on hot serving
// paths (slow-shard faults) where errors are not representable.
func Sleep(name Point) {
	if armed.Load() == 0 {
		return
	}
	trig, r := visit(name)
	if !trig {
		return
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.OnTrigger != nil {
		r.OnTrigger(name)
	}
}

// visit advances the named point's counters under the registry lock and
// reports whether this visit triggers, returning a copy of the rule.
func visit(name Point) (bool, Rule) {
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return false, Rule{}
	}
	p.visits++
	if p.visits <= p.rule.SkipFirst {
		return false, Rule{}
	}
	if p.rule.FailCount > 0 && p.triggered >= p.rule.FailCount {
		return false, Rule{}
	}
	if p.rng != nil && p.rng.Float64() >= p.rule.Probability {
		return false, Rule{}
	}
	p.triggered++
	return true, p.rule
}

// Armed reports whether any fault point is currently armed. Tests use
// it to assert clean teardown.
func Armed() bool {
	return armed.Load() != 0
}

// String summarizes the armed points, for debugging chaos schedules.
func String() string {
	mu.Lock()
	defer mu.Unlock()
	if len(points) == 0 {
		return "faultinject: disarmed"
	}
	s := "faultinject:"
	for name, p := range points {
		s += fmt.Sprintf(" %s(visits=%d,triggered=%d)", name, p.visits, p.triggered)
	}
	return s
}
