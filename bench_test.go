package nuevomatch_test

// Benchmarks regenerating the measured quantity behind every table and
// figure of the paper's evaluation (§5). Each benchmark name carries the
// experiment id; EXPERIMENTS.md maps them to the corresponding table or
// figure and records paper-vs-measured shapes. The pretty-printed versions
// of the full tables come from `go run ./cmd/benchrunner`.
//
// Scale knobs (defaults keep `go test -bench=.` minutes-scale):
//
//	NM_BENCH_SIZE     rule-set size for the classifier benches (default 5000)
//	NM_BENCH_PROFILE  ClassBench profile (default acl1)

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"nuevomatch"
	"nuevomatch/internal/analysis"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/core"
	"nuevomatch/internal/rqrmi"
	"nuevomatch/internal/rules"
	"nuevomatch/internal/stanford"
	"nuevomatch/internal/trace"
)

func benchSize() int {
	if s := os.Getenv("NM_BENCH_SIZE"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 5000
}

func benchProfile() classbench.Profile {
	name := os.Getenv("NM_BENCH_PROFILE")
	if name == "" {
		name = "acl1"
	}
	p, err := classbench.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// fixture carries a built rule-set, trace, baselines and engines shared by
// every benchmark; built once.
type fixture struct {
	rs    *rules.RuleSet
	pkts  []rules.Packet
	base  map[string]rules.Classifier
	nm    map[string]*core.Engine
	stRS  *rules.RuleSet
	stTM  rules.Classifier
	stNM  *core.Engine
	kern  *rqrmi.Kernel
	model *rqrmi.Model
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		size := benchSize()
		rs := classbench.Generate(benchProfile(), size)
		rng := rand.New(rand.NewSource(1))
		tr := trace.Uniform(rng, rs, 20000)
		f := &fixture{
			rs:   rs,
			pkts: tr.Packets,
			base: map[string]rules.Classifier{},
			nm:   map[string]*core.Engine{},
		}
		for _, name := range analysis.Baselines() {
			c, err := analysis.BuildBaseline(name, rs)
			if err != nil {
				panic(err)
			}
			f.base[name] = c
			e, err := analysis.BuildNM(name, rs)
			if err != nil {
				panic(err)
			}
			f.nm[name] = e
		}

		f.stRS = stanford.Generate(0, size)
		stTM, err := analysis.BuildBaseline(analysis.TM, f.stRS)
		if err != nil {
			panic(err)
		}
		f.stTM = stTM
		stNM, err := analysis.BuildNM(analysis.TM, f.stRS)
		if err != nil {
			panic(err)
		}
		f.stNM = stNM

		f.kern = rqrmi.NewKernel(8, 7)
		// A standalone RQ-RMI over the largest iSet's field for the model
		// microbenches.
		entries := make([]rqrmi.Entry, 0, 4096)
		lo := uint32(0)
		for i := 0; i < 4096; i++ {
			hi := lo + uint32(rng.Intn(1<<18))
			entries = append(entries, rqrmi.Entry{Range: rules.Range{Lo: lo, Hi: hi}, Value: i})
			lo = hi + 2 + uint32(rng.Intn(1000))
		}
		model, _, err := rqrmi.Train(entries, rqrmi.DefaultConfig(len(entries)))
		if err != nil {
			panic(err)
		}
		f.model = model
		fix = f
	})
	return fix
}

// --- Table 1: submodel inference vs batch width ------------------------

func BenchmarkTable1SubmodelInference(b *testing.B) {
	k := rqrmi.NewKernel(8, 7)
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint32, 4096)
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	var sink float64
	b.Run("serial1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += k.Eval1(keys[i&4095])
		}
	})
	b.Run("batch4", func(b *testing.B) {
		var in [4]uint32
		var out [4]float64
		for i := 0; i < b.N; i += 4 {
			j := i & 4092
			copy(in[:], keys[j:j+4])
			k.Eval4(&in, &out)
			sink += out[0]
		}
	})
	b.Run("batch8", func(b *testing.B) {
		var in [8]uint32
		var out [8]float64
		for i := 0; i < b.N; i += 8 {
			j := i & 4088
			copy(in[:], keys[j:j+8])
			k.Eval8(&in, &out)
			sink += out[0]
		}
	})
	var sink32 float32
	b.Run("batch8f32", func(b *testing.B) {
		var in [8]uint32
		var out [8]float32
		for i := 0; i < b.N; i += 8 {
			j := i & 4088
			copy(in[:], keys[j:j+8])
			k.Eval8F32(&in, &out, false)
			sink32 += out[0]
		}
	})
	if rqrmi.HasAsmKernel() {
		b.Run("batch8avx2", func(b *testing.B) {
			var in [8]uint32
			var out [8]float32
			for i := 0; i < b.N; i += 8 {
				j := i & 4088
				copy(in[:], keys[j:j+8])
				k.Eval8F32(&in, &out, true)
				sink32 += out[0]
			}
		})
	}
	if sink == 42.420001 || sink32 == 42.42 {
		b.Log("sink", sink, sink32)
	}
}

// --- RQ-RMI model microbenches ------------------------------------------

func BenchmarkRQRMILookup(b *testing.B) {
	f := getFixture(b)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint32, 4096)
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if _, ok := f.model.Lookup(keys[i&4095]); ok {
			hits++
		}
	}
	b.ReportMetric(float64(f.model.MaxError()), "max-err")
	_ = hits
}

// --- Figures 8/9: lookup speed vs baselines -----------------------------

func benchLookup(b *testing.B, c rules.Classifier, pkts []rules.Packet) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(pkts[i%len(pkts)])
	}
}

func BenchmarkFig9SingleCore(b *testing.B) {
	f := getFixture(b)
	for _, name := range analysis.Baselines() {
		b.Run(name, func(b *testing.B) { benchLookup(b, f.base[name], f.pkts) })
		b.Run("nm_w_"+name, func(b *testing.B) { benchLookup(b, f.nm[name], f.pkts) })
	}
}

// --- Batched hot path: LookupBatch vs per-packet Lookup -----------------

func BenchmarkLookupBatch(b *testing.B) {
	f := getFixture(b)
	e := f.nm[analysis.TM]
	b.Run("scalar", func(b *testing.B) { benchLookup(b, e, f.pkts) })
	b.Run("batch", func(b *testing.B) {
		out := make([]int, analysis.BatchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i += analysis.BatchSize {
			off := i % (len(f.pkts) - analysis.BatchSize)
			e.LookupBatch(f.pkts[off:off+analysis.BatchSize], out)
		}
	})
}

func BenchmarkFig8TwoCore(b *testing.B) {
	f := getFixture(b)
	out := make([]int, analysis.BatchSize)
	for _, name := range analysis.Baselines() {
		e := f.nm[name]
		b.Run("nm_w_"+name+"_batch", func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i += analysis.BatchSize {
				off := (i / analysis.BatchSize * analysis.BatchSize) % (len(f.pkts) - analysis.BatchSize)
				e.LookupBatchParallel(f.pkts[off:off+analysis.BatchSize], out)
			}
		})
	}
}

// --- Figure 10: Stanford backbone ---------------------------------------

func BenchmarkFig10Stanford(b *testing.B) {
	f := getFixture(b)
	rng := rand.New(rand.NewSource(4))
	tr := trace.Uniform(rng, f.stRS, 20000)
	b.Run("tm", func(b *testing.B) { benchLookup(b, f.stTM, tr.Packets) })
	b.Run("nm_w_tm", func(b *testing.B) { benchLookup(b, f.stNM, tr.Packets) })
}

// --- Figure 11: scaling (one extra size beyond the fixture) -------------

func BenchmarkFig11Scaling(b *testing.B) {
	for _, size := range []int{1000, benchSize()} {
		rs := classbench.Generate(benchProfile(), size)
		rng := rand.New(rand.NewSource(5))
		tr := trace.Uniform(rng, rs, 10000)
		tm, err := analysis.BuildBaseline(analysis.TM, rs)
		if err != nil {
			b.Fatal(err)
		}
		nm, err := analysis.BuildNM(analysis.TM, rs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tm_%d", size), func(b *testing.B) {
			benchLookup(b, tm, tr.Packets)
			b.ReportMetric(float64(tm.MemoryFootprint()), "index-bytes")
		})
		b.Run(fmt.Sprintf("nm_%d", size), func(b *testing.B) {
			benchLookup(b, nm, tr.Packets)
			b.ReportMetric(float64(nm.MemoryFootprint()), "index-bytes")
			b.ReportMetric(nm.Stats().Coverage*100, "coverage-%")
		})
	}
}

// --- Figure 12: skewed traffic ------------------------------------------

func BenchmarkFig12Skew(b *testing.B) {
	f := getFixture(b)
	rng := rand.New(rand.NewSource(6))
	for _, preset := range trace.SkewPresets() {
		tr, err := trace.Zipf(rng, f.rs, 20000, preset)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(preset.Name+"/tm", func(b *testing.B) { benchLookup(b, f.base[analysis.TM], tr.Packets) })
		b.Run(preset.Name+"/nm_w_tm", func(b *testing.B) { benchLookup(b, f.nm[analysis.TM], tr.Packets) })
	}
	ctr, err := trace.CAIDALike(rng, f.rs, 20000, trace.CAIDAOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("caida/tm", func(b *testing.B) { benchLookup(b, f.base[analysis.TM], ctr.Packets) })
	b.Run("caida/nm_w_tm", func(b *testing.B) { benchLookup(b, f.nm[analysis.TM], ctr.Packets) })
}

// --- Figure 13: memory footprint ----------------------------------------

func BenchmarkFig13Memory(b *testing.B) {
	f := getFixture(b)
	for _, name := range analysis.Baselines() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = f.base[name].MemoryFootprint()
			}
			b.ReportMetric(float64(f.base[name].MemoryFootprint()), "alone-bytes")
			b.ReportMetric(float64(f.nm[name].RemainderBytes()), "nm-remainder-bytes")
			b.ReportMetric(float64(f.nm[name].RQRMIBytes()), "nm-isets-bytes")
		})
	}
}

// --- Figure 14: pipeline breakdown --------------------------------------

func BenchmarkFig14Breakdown(b *testing.B) {
	f := getFixture(b)
	e := f.nm[analysis.CS]
	b.ResetTimer()
	var last core.Profile
	for i := 0; i < b.N; i++ {
		prof, _ := e.ProfileTrace(f.pkts[:1000])
		last = prof
	}
	rem, search, validate, infer := last.PerPacket()
	b.ReportMetric(float64(rem.Nanoseconds()), "remainder-ns")
	b.ReportMetric(float64(search.Nanoseconds()), "search-ns")
	b.ReportMetric(float64(validate.Nanoseconds()), "validate-ns")
	b.ReportMetric(float64(infer.Nanoseconds()), "inference-ns")
}

// --- Figure 15: training time vs error bound ----------------------------

func BenchmarkFig15Training(b *testing.B) {
	rs := classbench.Generate(benchProfile(), 2000)
	for _, bound := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("bound%d", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt, err := analysis.NMOptions(analysis.TM, bound)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Build(rs, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §5.3.5: validation vs field count ----------------------------------

func BenchmarkValidationFields(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 5, 10, 40} {
		rule := rules.Rule{Fields: make([]rules.Range, d)}
		pkt := make(rules.Packet, d)
		for f := 0; f < d; f++ {
			lo := rng.Uint32() >> 1
			rule.Fields[f] = rules.Range{Lo: lo, Hi: lo + 1<<20}
			pkt[f] = lo + 1<<10
		}
		b.Run(fmt.Sprintf("fields%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !rule.Matches(pkt) {
					b.Fatal("must match")
				}
			}
		})
	}
}

// --- §3.9: update path ----------------------------------------------------

func BenchmarkUpdates(b *testing.B) {
	rs := classbench.Generate(benchProfile(), 2000)
	e, err := nuevomatch.Build(rs, nuevomatch.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("insert_delete", func(b *testing.B) {
		fields := make([]nuevomatch.Range, 5)
		for d := range fields {
			fields[d] = nuevomatch.FullRange()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := 1_000_000 + i
			if err := e.Insert(nuevomatch.Rule{ID: id, Priority: 1 << 20, Fields: fields}); err != nil {
				b.Fatal(err)
			}
			if err := e.Delete(id); err != nil {
				b.Fatal(err)
			}
		}
	})
}
