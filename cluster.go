package nuevomatch

import (
	"errors"
	"fmt"
	"sync/atomic"

	"nuevomatch/internal/core"
)

// Cluster is the sharded serving layer: one logical rule-set partitioned
// across N independent engine shards, each a complete NuevoMatch table
// (its own iSets, frozen remainder, lock-free snapshot, and retrain
// machinery). A packet routes to exactly one shard — the partitioner
// replicates every rule to each shard a matching packet could route to, so
// first-match semantics are preserved shard-locally — which means per-packet
// cost shrinks with shard size while total rule capacity grows N-fold.
// Batches scatter across the shards and run concurrently on a multi-core
// host; that fan-out is the throughput axis a single engine cannot reach.
//
// Every shard can carry its own autopilot (WithClusterAutopilot), so a
// drift-triggered retrain stalls the update side of one shard — 1/N of the
// table — while the other shards keep taking updates undisturbed, and
// lookups everywhere stay lock-free throughout.
//
// Clusters persist as a directory: one table artifact per shard plus a
// manifest tying the routing function to the shard files (SaveDir /
// LoadCluster). Like Table, lookups are safe under any concurrency; updates
// serialize internally; Close releases background resources.
type Cluster struct {
	cc     *core.Cluster
	aps    []*core.Autopilot
	closed atomic.Bool
}

// ClusterOption configures OpenCluster and LoadCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	shards     int
	field      int
	kind       core.PartitionKind
	shardOpts  []Option
	autopilot  *AutopilotPolicy
	persistDir string
}

// WithShards sets the shard count (default 2, maximum MaxClusterShards).
// The range partitioner may serve fewer shards than requested when the
// partition field lacks enough distinct values to cut; NumShards reports
// the actual width.
func WithShards(n int) ClusterOption {
	return func(c *clusterConfig) { c.shards = n }
}

// WithPartitionField keys routing on field d instead of the default
// auto-selection (the most diverse field, §3.7's signal for a field that
// separates rules well).
func WithPartitionField(d int) ClusterOption {
	return func(c *clusterConfig) { c.field = d }
}

// WithHashPartition switches the partitioner from range splitting to
// hashing the partition-field value. Exact-match rules land on a single
// shard; every non-exact rule is replicated to all shards, so hash
// partitioning suits exact-heavy fields (ports, protocol) and
// range-partitioning (the default) suits prefix-heavy ones (IPs).
func WithHashPartition() ClusterOption {
	return func(c *clusterConfig) { c.kind = core.PartitionHash }
}

// WithShardOptions forwards table options (WithMaxISets, WithRemainder,
// WithRQRMI, ...) to every shard's engine build. Autopilot options are not
// accepted here — per-shard supervision attaches through
// WithClusterAutopilot.
func WithShardOptions(opts ...Option) ClusterOption {
	return func(c *clusterConfig) { c.shardOpts = append(c.shardOpts, opts...) }
}

// WithClusterAutopilot attaches an independent drift supervisor to every
// shard: each shard's watcher polls its own engine and retrains it in place
// when the policy trips, so coverage decay in one partition triggers one
// shard-sized retrain instead of a whole-table one. Close stops all
// watchers.
func WithClusterAutopilot(p AutopilotPolicy) ClusterOption {
	return func(c *clusterConfig) { c.autopilot = &p }
}

// WithClusterAutopilotPersist re-saves the whole cluster under dir after
// every successful autopilot retrain of any shard, keeping the saved
// cluster warm the way WithAutopilotPersist does for a single table. The
// save is the full SaveDir — every shard file plus the manifest — because
// shard files written at different times would disagree about rules
// inserted in between (replicated rules especially), and LoadCluster
// rejects such a directory rather than misroute. Persist failures are
// recorded in the shard's Autopilot().Stats() and never undo the in-memory
// swap. Requires WithClusterAutopilot.
func WithClusterAutopilotPersist(dir string) ClusterOption {
	return func(c *clusterConfig) { c.persistDir = dir }
}

func applyClusterOptions(opts []ClusterOption) (clusterConfig, tableConfig, error) {
	c := clusterConfig{field: core.AutoPartitionField}
	for _, o := range opts {
		o(&c)
	}
	if c.persistDir != "" && c.autopilot == nil {
		return c, tableConfig{}, errors.New("nuevomatch: WithClusterAutopilotPersist requires WithClusterAutopilot")
	}
	tc, err := applyOptions(c.shardOpts)
	if err != nil {
		return c, tc, err
	}
	if tc.autopilot != nil || tc.persistPath != "" {
		return c, tc, errors.New("nuevomatch: use WithClusterAutopilot/WithClusterAutopilotPersist instead of per-shard autopilot options")
	}
	return c, tc, nil
}

// finishCluster wires per-shard autopilots around a built or loaded core
// cluster.
func finishCluster(cc *core.Cluster, c clusterConfig) *Cluster {
	cl := &Cluster{cc: cc}
	if c.autopilot != nil {
		cl.aps = make([]*core.Autopilot, cc.NumShards())
		for s := 0; s < cc.NumShards(); s++ {
			policy := *c.autopilot
			if c.persistDir != "" {
				dir, user := c.persistDir, policy.AfterRetrain
				policy.AfterRetrain = func(st RetrainStats) error {
					// Whole-cluster save: shard files written at different
					// times would disagree about concurrent inserts, and the
					// loader's replication-invariant check rejects that.
					if err := cc.SaveDir(dir); err != nil {
						return err
					}
					if user != nil {
						return user(st)
					}
					return nil
				}
			}
			// Self-healing wiring: consecutive retrain failures on one shard
			// quarantine it (the shard keeps serving its last snapshot while a
			// background rebuilder retries), and a success clears the count.
			userFail := policy.AfterFailure
			policy.AfterFailure = func(err error) {
				cc.NoteRetrainFailure(s, err)
				if userFail != nil {
					userFail(err)
				}
			}
			userOK := policy.AfterRetrain
			policy.AfterRetrain = func(st RetrainStats) error {
				cc.NoteRetrainSuccess(s)
				if userOK != nil {
					return userOK(st)
				}
				return nil
			}
			cl.aps[s] = core.NewAutopilot(cc.ShardEngine(s), policy)
			cl.aps[s].Start()
		}
	}
	return cl
}

// OpenCluster trains a sharded NuevoMatch cluster over the rule-set: the
// partitioner splits (and where ranges span shards, replicates) the rules,
// and every shard trains its own engine — in parallel, since shard training
// is independent. The rule-set is cloned; the caller's copy is not
// retained.
func OpenCluster(rs *RuleSet, opts ...ClusterOption) (*Cluster, error) {
	c, tc, err := applyClusterOptions(opts)
	if err != nil {
		return nil, err
	}
	cc, err := core.BuildCluster(rs, core.ClusterOptions{
		Shards:         c.shards,
		PartitionField: c.field,
		Kind:           c.kind,
		Engine:         tc.opts,
	})
	if err != nil {
		return nil, err
	}
	return finishCluster(cc, c), nil
}

// LoadCluster reconstructs a cluster saved by SaveDir from its CURRENT
// generation (legacy flat directories still load): the manifest restores
// the routing function and each shard loads through the table codec
// (checksums verified, zero retraining). The loader re-verifies that
// every rule lives in exactly the shards the partitioner routes it to, so
// a mismatched manifest/shard combination fails loudly instead of
// misrouting packets. A shard artifact that fails its checksum does not
// fail the load when the generation's rules artifact is intact: the shard
// comes up quarantined on a correct remainder-only fallback built from its
// rule replica, serves immediately, and is retrained back to full speed in
// the background (see Cluster.Health / QuarantinedShards).
// WithShardOptions(WithRemainder(...)) overrides the recorded remainder
// builder as in Load.
func LoadCluster(dir string, opts ...ClusterOption) (*Cluster, error) {
	c, tc, err := applyClusterOptions(opts)
	if err != nil {
		return nil, err
	}
	override, err := tc.remainderOverride()
	if err != nil {
		return nil, err
	}
	cc, err := core.LoadClusterDir(dir, override)
	if err != nil {
		return nil, fmt.Errorf("nuevomatch: loading cluster %s: %w", dir, err)
	}
	return finishCluster(cc, c), nil
}

// SaveDir persists the whole cluster into dir, crash-safely: a new
// generation directory (gen-NNNNNNNN) is staged with one table artifact
// per shard, a rules artifact, and the manifest — every file fsynced —
// then atomically renamed into place and published by flipping the CURRENT
// pointer, with the directory fsynced around the rename. The previous
// generation is kept as the rollback target; a crash at any byte of the
// save leaves CURRENT on the last-good generation (FsckCluster verifies
// and repairs). Safe to call concurrently with lookups; updates serialize
// with it.
func (c *Cluster) SaveDir(dir string) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.cc.SaveDir(dir)
}

// Lookup returns the ID of the highest-priority rule matching the packet,
// or NoMatch. Exactly one shard is consulted — the replication invariant
// guarantees it holds every rule that can match — so the cost is a lookup
// in an engine 1/N the size of the whole table.
func (c *Cluster) Lookup(p Packet) int { return c.cc.Lookup(p) }

// LookupBatch classifies len(pkts) packets into out (which must have at
// least len(pkts) entries): packets scatter to their shards, nonempty
// shards run the batched inference path concurrently on pooled workers
// (given more than one CPU), and per-shard winners merge back in the
// caller's order. Zero-alloc in steady state.
func (c *Cluster) LookupBatch(pkts []Packet, out []int) { c.cc.LookupBatch(pkts, out) }

// Insert adds a rule online, replicating it to every shard its
// partition-field range spans.
func (c *Cluster) Insert(r Rule) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.cc.Insert(r)
}

// Delete removes a rule by ID from every shard holding a replica.
func (c *Cluster) Delete(id int) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.cc.Delete(id)
}

// Modify replaces a rule's matching set or priority (delete + reinsert,
// §3.9), re-routing the rule if its partition-field range moved across
// shards.
func (c *Cluster) Modify(r Rule) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.cc.Modify(r)
}

// RetrainShard retrains one shard in place while the others keep serving
// and taking updates — the isolation sharding buys. The per-shard autopilot
// calls this automatically when attached.
func (c *Cluster) RetrainShard(s int) (RetrainStats, error) {
	if c.closed.Load() {
		return RetrainStats{}, ErrClosed
	}
	return c.cc.RetrainShard(s)
}

// NumShards returns the number of engine shards actually serving.
func (c *Cluster) NumShards() int { return c.cc.NumShards() }

// NumFields returns the dimensionality of the served rule-set — the field
// count every Lookup packet must carry. Fixed at build time.
func (c *Cluster) NumFields() int { return c.cc.NumFields() }

// LiveRuleSet snapshots the distinct live rules across all shards (replicas
// deduplicated) — the logical rule-set the cluster serves.
func (c *Cluster) LiveRuleSet() *RuleSet { return c.cc.LiveRuleSet() }

// ShardEngine exposes shard s's engine for stats, manual retrains, or
// direct benchmarking of one partition.
func (c *Cluster) ShardEngine(s int) *Engine { return c.cc.ShardEngine(s) }

// ShardAutopilot returns shard s's drift supervisor, or nil when the
// cluster was opened without WithClusterAutopilot.
func (c *Cluster) ShardAutopilot(s int) *Autopilot {
	if c.aps == nil {
		return nil
	}
	return c.aps[s]
}

// AutopilotStats aggregates the shard supervisors' activity: retrain and
// failure counts and replayed updates sum, the latencies keep the
// worst/most recent values. Zero when no autopilot is attached.
func (c *Cluster) AutopilotStats() AutopilotStats {
	var agg AutopilotStats
	for s, ap := range c.aps {
		st := ap.Stats()
		agg.Checks += st.Checks
		agg.Retrains += st.Retrains
		agg.Failures += st.Failures
		agg.Replayed += st.Replayed
		agg.PersistFailures += st.PersistFailures
		agg.TotalTrain += st.TotalTrain
		if st.MaxSwap > agg.MaxSwap {
			agg.MaxSwap = st.MaxSwap
		}
		if st.LastTrigger != "" {
			agg.LastTrigger = st.LastTrigger
			agg.LastTrain = st.LastTrain
			agg.LastSwap = st.LastSwap
		}
		// Prefix the originating shard: the aggregate keeps only the most
		// recent error string, and without attribution a multi-shard
		// cluster's "last error" is undebuggable.
		if st.LastError != "" {
			agg.LastError = fmt.Sprintf("shard %d: %s", s, st.LastError)
		}
		if st.LastPersistError != "" {
			agg.LastPersistError = fmt.Sprintf("shard %d: %s", s, st.LastPersistError)
		}
	}
	return agg
}

// Stats reports the cluster's current shape: shard count, routing function,
// per-shard rule counts, and how many rules replication duplicated.
func (c *Cluster) Stats() ClusterStats { return c.cc.Stats() }

// Health reports the cluster's serving condition: Failed when closed,
// Degraded while any shard is quarantined (serving its correct fallback
// while a background rebuilder retries) or any shard's autopilot is
// accumulating retrain or persist failures, Healthy otherwise. The
// fail-static guarantee holds in every state short of Failed: lookups are
// never wrong, only possibly stale or slower.
func (c *Cluster) Health() Health {
	if c.closed.Load() {
		return Health{State: Failed, Reasons: []HealthReason{{Shard: -1, Code: "closed", Detail: "cluster closed"}}}
	}
	h := c.cc.Health()
	// One reason per degradation signal: a quarantined shard's consecutive
	// retrain failures are what put it in quarantine, and the core health
	// already reports "shard-quarantined" (with the rebuild progress) for
	// it. Re-adding the autopilot's "retrain-failing" for the same shard
	// would double-count the shard in any consumer that tallies reasons —
	// exactly the mid-quarantine-rebuild window a readiness endpoint reads.
	quarantined := make(map[int]bool, len(h.Reasons))
	for _, r := range h.Reasons {
		if r.Code == "shard-quarantined" {
			quarantined[r.Shard] = true
		}
	}
	for s, ap := range c.aps {
		eh := core.EngineHealth(ap.Stats())
		for _, r := range eh.Reasons {
			if r.Code == "retrain-failing" && quarantined[s] {
				continue
			}
			r.Shard = s
			h.Reasons = append(h.Reasons, r)
		}
	}
	if len(h.Reasons) > 0 && h.State == Healthy {
		h.State = Degraded
	}
	return h
}

// QuarantinedShards lists the shards currently isolated behind their
// fallback (sorted). Empty on a healthy cluster.
func (c *Cluster) QuarantinedShards() []int { return c.cc.QuarantinedShards() }

// SetQuarantinePolicy replaces the cluster's shard-quarantine policy (zero
// fields take the documented defaults: 3 consecutive retrain failures to
// quarantine, 50ms base rebuild backoff doubling to a 5s cap).
func (c *Cluster) SetQuarantinePolicy(p QuarantinePolicy) { c.cc.SetQuarantinePolicy(p) }

// Name implements Classifier.
func (c *Cluster) Name() string { return "nuevomatch-cluster" }

// MemoryFootprint implements Classifier: the sum of the shards' model and
// remainder-index bytes.
func (c *Cluster) MemoryFootprint() int { return c.cc.MemoryFootprint() }

// Close stops every shard autopilot (waiting out in-flight retrains),
// retires the cluster's pooled batch workers, and closes the shard engines.
// Idempotent; concurrent lookups are unaffected and remain valid after
// Close, while subsequent updates fail with ErrClosed.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, ap := range c.aps {
		ap.Stop()
	}
	c.cc.Close()
	return nil
}

// FsckCluster verifies a cluster directory saved by SaveDir and, with
// repair set, restores it to a loadable state: CURRENT is pointed at the
// newest fully intact generation (rolling forward to a complete save whose
// pointer flip was lost, or back to the last-good generation when the
// newest is torn), and torn staging directories plus broken generations are
// swept. Verification covers the manifest, every shard artifact's checksum
// and full decode, the rules artifact, and the cross-shard replication
// invariant. Without repair it only reports.
func FsckCluster(dir string, repair bool) (*FsckReport, error) {
	return core.FsckClusterDir(dir, repair)
}

// ClusterCurrentDir resolves the generation directory a saved cluster
// currently serves from: the one named by dir's CURRENT pointer, or dir
// itself for a legacy flat layout. Tools that inspect the saved artifacts
// (manifest, shard files) should resolve through this rather than assume a
// layout.
func ClusterCurrentDir(dir string) (string, error) {
	return core.ClusterCurrentDir(dir)
}

var _ Classifier = (*Cluster)(nil)
