// Quickstart: build a NuevoMatch table over a handful of rules — the
// paper's Figure 2 classifier — classify packets, and round-trip the table
// through its serialized form, all through the public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"nuevomatch"
)

func main() {
	ip := func(s string) uint32 {
		v, err := nuevomatch.ParseIPv4(s)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}

	// The classifier of the paper's Figure 2: two fields (IPv4 address,
	// port), five overlapping rules, priorities 1 (highest) to 5.
	rs := nuevomatch.NewRuleSet(2)
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.0.0"), 16), nuevomatch.Range{Lo: 10, Hi: 18}) // R0 -> a1
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.1.0"), 24), nuevomatch.Range{Lo: 15, Hi: 25}) // R1 -> a2
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.0.0.0"), 8), nuevomatch.Range{Lo: 5, Hi: 8})     // R2 -> a3
	rs.AddAuto(nuevomatch.PrefixRange(ip("10.10.3.0"), 24), nuevomatch.Range{Lo: 7, Hi: 20})  // R3 -> a4
	rs.AddAuto(nuevomatch.ExactRange(ip("10.10.3.100")), nuevomatch.ExactRange(19))           // R4 -> a5

	table, err := nuevomatch.Open(rs)
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()
	st := table.Stats()
	fmt.Printf("built: %d iSets, coverage %.0f%%, remainder %d rules, %d B of models\n",
		table.NumISets(), st.Coverage*100, st.RemainderSize, table.RQRMIBytes())

	actions := []string{"a1", "a2", "a3", "a4", "a5"}
	classify := func(t *nuevomatch.Table, addr string, port uint32) {
		pkt := nuevomatch.Packet{ip(addr), port}
		if id := t.Lookup(pkt); id >= 0 {
			fmt.Printf("%s:%-3d -> R%d (%s)\n", addr, port, id, actions[id])
		} else {
			fmt.Printf("%s:%-3d -> no match\n", addr, port)
		}
	}

	// The paper's worked example: 10.10.3.100:19 matches R3 and R4; R3
	// wins on priority, so the action is a4.
	classify(table, "10.10.3.100", 19)
	classify(table, "10.10.1.50", 20) // R1 -> a2
	classify(table, "10.9.0.1", 6)    // R2 -> a3
	classify(table, "192.168.1.1", 80)

	// Persistence: training happens once, the artifact serves forever.
	// (Production writes a file — table.SaveFile("figure2.nm") — and warm
	// starts with nuevomatch.LoadFile.)
	var artifact bytes.Buffer
	n, err := table.Save(&artifact)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := nuevomatch.Load(&artifact)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()
	fmt.Printf("reloaded %d B artifact without retraining:\n", n)
	classify(loaded, "10.10.3.100", 19)
}
