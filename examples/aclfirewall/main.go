// ACL firewall: the paper's motivating scenario — a virtual network
// function classifying packets against a large access-control list. This
// example generates a ClassBench-style ACL, builds NuevoMatch with a
// TupleMerge remainder, verifies it against the linear-scan reference, and
// compares throughput and index memory against TupleMerge alone.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nuevomatch"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/trace"
)

func main() {
	const nRules = 20000

	profile, err := classbench.ProfileByName("acl1")
	if err != nil {
		log.Fatal(err)
	}
	rs := classbench.Generate(profile, nRules)
	fmt.Printf("generated %d ACL rules (profile %s)\n", rs.Len(), profile.Name)

	// Baseline: TupleMerge alone.
	tmStart := time.Now()
	tm, err := nuevomatch.TupleMerge(rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuplemerge: built in %v, index %d KB\n",
		time.Since(tmStart).Round(time.Millisecond), tm.MemoryFootprint()/1024)

	// NuevoMatch accelerating TupleMerge (the paper's default pairing:
	// up to 4 iSets, 5% minimum coverage).
	nmStart := time.Now()
	engine, err := nuevomatch.Build(rs, nuevomatch.Options{
		MaxISets:    4,
		MinCoverage: 0.05,
		Remainder:   nuevomatch.TupleMerge,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("nuevomatch: built in %v (training %v), %d iSets covering %.1f%%\n",
		time.Since(nmStart).Round(time.Millisecond), st.TrainingTime.Round(time.Millisecond),
		engine.NumISets(), st.Coverage*100)
	fmt.Printf("nuevomatch: models %d KB + remainder %d KB (vs %d KB tm alone)\n",
		engine.RQRMIBytes()/1024, engine.RemainderBytes()/1024, tm.MemoryFootprint()/1024)

	// Correctness spot-check against the linear reference.
	rng := rand.New(rand.NewSource(42))
	tr := trace.Uniform(rng, rs, 50000)
	for i, p := range tr.Packets[:5000] {
		if got, want := engine.Lookup(p), rs.MatchID(p); got != want {
			log.Fatalf("packet %d: nuevomatch says %d, reference says %d", i, got, want)
		}
	}
	fmt.Println("verified 5000 packets against the linear-scan reference")

	// Throughput comparison on a uniform trace (the paper's worst case).
	measure := func(name string, lookup func(nuevomatch.Packet) int) float64 {
		start := time.Now()
		matched := 0
		for _, p := range tr.Packets {
			if lookup(p) >= 0 {
				matched++
			}
		}
		pps := float64(len(tr.Packets)) / time.Since(start).Seconds()
		fmt.Printf("%-12s %10.0f pps (%.1f%% matched)\n", name, pps, 100*float64(matched)/float64(len(tr.Packets)))
		return pps
	}
	tmPPS := measure("tuplemerge", tm.Lookup)
	nmPPS := measure("nuevomatch", engine.Lookup)
	fmt.Printf("speedup: %.2fx\n", nmPPS/tmPPS)
}
