// ACL firewall: the paper's motivating scenario — a virtual network
// function classifying packets against a large access-control list. This
// example generates a ClassBench-style ACL, builds a NuevoMatch table with
// a TupleMerge remainder, verifies it against the linear-scan reference,
// compares throughput and index memory against TupleMerge alone, and shows
// the build-offline / load-warm split that skips retraining on restart.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"nuevomatch"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/trace"
)

func main() {
	const nRules = 20000

	profile, err := classbench.ProfileByName("acl1")
	if err != nil {
		log.Fatal(err)
	}
	rs := classbench.Generate(profile, nRules)
	fmt.Printf("generated %d ACL rules (profile %s)\n", rs.Len(), profile.Name)

	// Baseline: TupleMerge alone.
	tmStart := time.Now()
	tm, err := nuevomatch.TupleMerge(rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuplemerge: built in %v, index %d KB\n",
		time.Since(tmStart).Round(time.Millisecond), tm.MemoryFootprint()/1024)

	// NuevoMatch accelerating TupleMerge (the paper's default pairing:
	// up to 4 iSets, 5% minimum coverage).
	nmStart := time.Now()
	table, err := nuevomatch.Open(rs,
		nuevomatch.WithMaxISets(4),
		nuevomatch.WithMinCoverage(0.05),
		nuevomatch.WithRemainder(nuevomatch.TupleMerge))
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()
	buildTime := time.Since(nmStart)
	st := table.Stats()
	fmt.Printf("nuevomatch: built in %v (training %v), %d iSets covering %.1f%%\n",
		buildTime.Round(time.Millisecond), st.TrainingTime.Round(time.Millisecond),
		table.NumISets(), st.Coverage*100)
	fmt.Printf("nuevomatch: models %d KB + remainder %d KB (vs %d KB tm alone)\n",
		table.RQRMIBytes()/1024, table.RemainderBytes()/1024, tm.MemoryFootprint()/1024)

	// Correctness spot-check against the linear reference.
	rng := rand.New(rand.NewSource(42))
	tr := trace.Uniform(rng, rs, 50000)
	for i, p := range tr.Packets[:5000] {
		if got, want := table.Lookup(p), rs.MatchID(p); got != want {
			log.Fatalf("packet %d: nuevomatch says %d, reference says %d", i, got, want)
		}
	}
	fmt.Println("verified 5000 packets against the linear-scan reference")

	// Persistence: the training above happens once, offline; every restart
	// loads the artifact in milliseconds instead.
	path := filepath.Join(os.TempDir(), "aclfirewall.nm")
	if err := table.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	loadStart := time.Now()
	loaded, err := nuevomatch.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer loaded.Close()
	defer os.Remove(path)
	loadTime := time.Since(loadStart)
	fmt.Printf("persisted and reloaded: %v load vs %v build (%.0fx), lookups identical: %v\n",
		loadTime.Round(time.Millisecond), buildTime.Round(time.Millisecond),
		float64(buildTime)/float64(loadTime),
		loaded.Lookup(tr.Packets[0]) == table.Lookup(tr.Packets[0]))

	// Throughput comparison on a uniform trace (the paper's worst case).
	measure := func(name string, lookup func(nuevomatch.Packet) int) float64 {
		start := time.Now()
		matched := 0
		for _, p := range tr.Packets {
			if lookup(p) >= 0 {
				matched++
			}
		}
		pps := float64(len(tr.Packets)) / time.Since(start).Seconds()
		fmt.Printf("%-12s %10.0f pps (%.1f%% matched)\n", name, pps, 100*float64(matched)/float64(len(tr.Packets)))
		return pps
	}
	tmPPS := measure("tuplemerge", tm.Lookup)
	nmPPS := measure("nuevomatch", table.Lookup)
	fmt.Printf("speedup: %.2fx\n", nmPPS/tmPPS)
}
