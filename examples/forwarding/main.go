// IP forwarding: the paper's real-world workload (Figure 10) — a backbone
// forwarding table with a single matching field (destination IP prefix).
// Single-field rule-sets give the iSet partitioner only one dimension, so
// prefix nesting forces several iSets; this example shows the coverage
// profile of Table 2's Stanford row and the resulting acceleration.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nuevomatch"
	"nuevomatch/internal/stanford"
	"nuevomatch/internal/trace"
)

func main() {
	const nPrefixes = 30000

	rs := stanford.Generate(0, nPrefixes)
	fmt.Printf("generated %d forwarding prefixes (Stanford-backbone profile)\n", rs.Len())

	engine, err := nuevomatch.Open(rs,
		nuevomatch.WithMaxISets(4),
		nuevomatch.WithMinCoverage(0.05),
		nuevomatch.WithRemainder(nuevomatch.TupleMerge))
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	st := engine.Stats()
	fmt.Printf("iSets: %d, sizes %v\n", engine.NumISets(), st.ISetSizes)
	cum := 0.0
	for i, sz := range st.ISetSizes {
		cum += float64(sz) / float64(rs.Len())
		fmt.Printf("  coverage after %d iSet(s): %.1f%% (paper's Stanford row: 57.8/91.6/96.5/98.2)\n", i+1, cum*100)
	}
	fmt.Printf("remainder: %d prefixes, max search distance %d\n", st.RemainderSize, st.MaxSearchDistance)

	// Longest-prefix-match semantics: more specific prefixes must win.
	// stanford.Generate assigns priorities by insertion order, so remap to
	// prefix length before building in a real deployment; here we verify
	// against the same reference so semantics agree.
	rng := rand.New(rand.NewSource(7))
	tr := trace.Uniform(rng, rs, 50000)
	for i, p := range tr.Packets[:5000] {
		if got, want := engine.Lookup(p), rs.MatchID(p); got != want {
			log.Fatalf("packet %d: engine %d != reference %d", i, got, want)
		}
	}
	fmt.Println("verified 5000 lookups against the reference")

	tm, err := nuevomatch.TupleMerge(rs)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []nuevomatch.Classifier{tm, engine} {
		start := time.Now()
		for _, p := range tr.Packets {
			c.Lookup(p)
		}
		fmt.Printf("%-12s %10.0f pps, index %d KB\n", c.Name(),
			float64(len(tr.Packets))/time.Since(start).Seconds(), c.MemoryFootprint()/1024)
	}

	// The batched entry point is the engine's primary high-throughput API:
	// RQ-RMI inference runs stage-by-stage across packet chunks and the
	// remainder is queried once per chunk.
	const batch = 128
	out := make([]int, batch)
	start := time.Now()
	for off := 0; off+batch <= len(tr.Packets); off += batch {
		engine.LookupBatch(tr.Packets[off:off+batch], out)
	}
	n := len(tr.Packets) / batch * batch
	fmt.Printf("%-12s %10.0f pps (LookupBatch, batch=%d)\n", engine.Name(),
		float64(n)/time.Since(start).Seconds(), batch)
}
