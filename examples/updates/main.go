// Online updates: the §3.9 lifecycle — serve lookups while inserting and
// deleting rules, watch the remainder grow (and throughput drift toward the
// remainder classifier's), then retrain, exactly the periodic-retraining
// regime of Figure 7. The second half hands the same lifecycle to the
// autopilot: a drift policy trips a background retrain and the retrained
// state is hot-swapped behind the serving engine's snapshot pointer.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nuevomatch"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/trace"
)

func main() {
	profile, err := classbench.ProfileByName("ipc1")
	if err != nil {
		log.Fatal(err)
	}
	rs := classbench.Generate(profile, 10000)

	engine, err := nuevomatch.Build(rs, nuevomatch.Options{Remainder: nuevomatch.TupleMerge})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial build: coverage %.1f%%, remainder %d rules\n",
		engine.Stats().Coverage*100, engine.Stats().RemainderSize)

	rng := rand.New(rand.NewSource(9))
	tr := trace.Uniform(rng, rs, 20000)
	throughput := func(e *nuevomatch.Engine) float64 {
		start := time.Now()
		for _, p := range tr.Packets {
			e.Lookup(p)
		}
		return float64(len(tr.Packets)) / time.Since(start).Seconds()
	}
	fmt.Printf("throughput before updates: %.0f pps\n", throughput(engine))

	// Apply a burst of updates: modify existing rules (delete+insert into
	// the remainder) and add brand-new rules.
	nextID := 1 << 20
	for i := 0; i < 2000; i++ {
		switch i % 4 {
		case 0: // delete a built rule
			if err := engine.Delete(rs.Rules[rng.Intn(rs.Len())].ID); err != nil {
				continue // already deleted: pick another next round
			}
		case 1, 2: // insert a new specific rule
			r := nuevomatch.Rule{
				ID:       nextID,
				Priority: int32(rng.Intn(1 << 20)),
				Fields: []nuevomatch.Range{
					nuevomatch.PrefixRange(rng.Uint32(), 24),
					nuevomatch.PrefixRange(rng.Uint32(), 24),
					nuevomatch.FullRange(),
					nuevomatch.ExactRange(uint32(rng.Intn(65536))),
					nuevomatch.ExactRange(6),
				},
			}
			nextID++
			if err := engine.Insert(r); err != nil {
				log.Fatal(err)
			}
		case 3: // modify: matching-set change moves the rule to the remainder
			victim := rs.Rules[rng.Intn(rs.Len())]
			mod := victim
			mod.Fields = append([]nuevomatch.Range(nil), victim.Fields...)
			mod.Fields[nuevomatch.FieldDstPort] = nuevomatch.ExactRange(uint32(rng.Intn(65536)))
			if err := engine.Modify(mod); err != nil {
				continue // victim may have been deleted earlier
			}
		}
	}
	st := engine.Updates()
	fmt.Printf("after %d inserts / %d+%d deletes: live %d rules, remainder fraction %.1f%%\n",
		st.Inserted, st.DeletedFromISets, st.DeletedFromRemainder, st.LiveRules, st.RemainderFraction*100)
	fmt.Printf("throughput after updates: %.0f pps\n", throughput(engine))

	// Periodic retraining (Figure 7): rebuild over the live rules.
	start := time.Now()
	fresh, err := engine.Rebuild()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrained in %v: coverage back to %.1f%%, remainder fraction %.1f%%\n",
		time.Since(start).Round(time.Millisecond),
		fresh.Stats().Coverage*100, fresh.Updates().RemainderFraction*100)
	fmt.Printf("throughput after retrain: %.0f pps\n", throughput(fresh))

	// Consistency check: the fresh engine agrees with the drifted one.
	live := engine.LiveRuleSet()
	for i := 0; i < 5000; i++ {
		p := tr.Packets[rng.Intn(len(tr.Packets))]
		a, b := engine.Lookup(p), fresh.Lookup(p)
		if a != b {
			// Equal-priority ties may resolve differently across builds.
			pa, pb := priorityOf(live, a), priorityOf(live, b)
			if pa != pb {
				log.Fatalf("engines disagree on %v: %d (prio %d) vs %d (prio %d)", p, a, pa, b, pb)
			}
		}
		_ = i
	}
	fmt.Println("drifted and retrained engines agree on 5000 packets")

	// Autopilot: the same retraining, but autonomous and in place. The
	// policy trips after 500 updates; training runs on a background
	// goroutine while lookups and updates keep flowing, updates arriving
	// mid-train are journaled and replayed, and the swap is one atomic
	// snapshot store — the engine pointer never changes.
	ap := nuevomatch.NewAutopilot(fresh, nuevomatch.AutopilotPolicy{
		MaxUpdates: 500,
		Interval:   5 * time.Millisecond,
	})
	ap.Start()
	defer ap.Stop()
	liveIDs := make([]int, 0, fresh.Updates().LiveRules)
	for _, r := range fresh.LiveRuleSet().Rules {
		liveIDs = append(liveIDs, r.ID)
	}
	for i := 0; i < 1200; i++ {
		switch i % 2 {
		case 0:
			r := nuevomatch.Rule{
				ID:       nextID,
				Priority: int32(rng.Intn(1 << 20)),
				Fields: []nuevomatch.Range{
					nuevomatch.PrefixRange(rng.Uint32(), 24),
					nuevomatch.PrefixRange(rng.Uint32(), 16),
					nuevomatch.FullRange(),
					nuevomatch.ExactRange(uint32(rng.Intn(65536))),
					nuevomatch.ExactRange(17),
				},
			}
			nextID++
			if err := fresh.Insert(r); err != nil {
				log.Fatal(err)
			}
			liveIDs = append(liveIDs, r.ID)
		case 1:
			j := rng.Intn(len(liveIDs))
			if err := fresh.Delete(liveIDs[j]); err != nil {
				log.Fatal(err)
			}
			liveIDs[j] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		}
		// Lookups keep being served throughout, swaps included.
		fresh.Lookup(tr.Packets[i%len(tr.Packets)])
	}
	// Give the watcher a moment to absorb the final drift tranche, then
	// force a synchronous check in case the burst outran the poll interval.
	time.Sleep(20 * time.Millisecond)
	if _, err := ap.Check(); err != nil {
		log.Fatal(err)
	}
	ap.Stop()
	ast := ap.Stats()
	fmt.Printf("autopilot: %d retrains (trigger %q), %d journaled updates replayed, max swap %v\n",
		ast.Retrains, ast.LastTrigger, ast.Replayed, ast.MaxSwap.Round(time.Microsecond))
	fmt.Printf("autopilot: remainder fraction now %.1f%% (policy ceiling keeps coverage fresh)\n",
		fresh.Updates().RemainderFraction*100)
	fmt.Printf("throughput with autopilot: %.0f pps\n", throughput(fresh))
}

func priorityOf(rs *nuevomatch.RuleSet, id int) int32 {
	for i := range rs.Rules {
		if rs.Rules[i].ID == id {
			return rs.Rules[i].Priority
		}
	}
	return -1
}
