// Online updates: the §3.9 lifecycle on a Table — serve lookups while
// inserting and deleting rules, watch the remainder grow (and throughput
// drift toward the remainder classifier's), then retrain in place with a
// hot swap, exactly the periodic-retraining regime of Figure 7. The second
// half hands the same lifecycle to the autopilot — a drift policy trips
// background retrains — with persistence wired in: after every retrain the
// artifact on disk is refreshed, and a restart warm-starts from it.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"nuevomatch"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/trace"
)

func main() {
	profile, err := classbench.ProfileByName("ipc1")
	if err != nil {
		log.Fatal(err)
	}
	rs := classbench.Generate(profile, 10000)

	artifact := filepath.Join(os.TempDir(), "updates-demo.nm")
	defer os.Remove(artifact)

	// The autopilot supervises the table from the start: the policy trips
	// after 500 updates, training runs on a background goroutine while
	// lookups and updates keep flowing, updates arriving mid-train are
	// journaled and replayed in one bulk pass, the swap is one atomic
	// snapshot store — and every retrained state is re-saved to the
	// artifact.
	table, err := nuevomatch.Open(rs,
		nuevomatch.WithRemainder(nuevomatch.TupleMerge),
		nuevomatch.WithAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates: 500,
			Interval:   5 * time.Millisecond,
		}),
		nuevomatch.WithAutopilotPersist(artifact))
	if err != nil {
		log.Fatal(err)
	}
	defer table.Close()
	fmt.Printf("initial build: coverage %.1f%%, remainder %d rules\n",
		table.Stats().Coverage*100, table.Stats().RemainderSize)

	rng := rand.New(rand.NewSource(9))
	tr := trace.Uniform(rng, rs, 20000)
	throughput := func() float64 {
		start := time.Now()
		for _, p := range tr.Packets {
			table.Lookup(p)
		}
		return float64(len(tr.Packets)) / time.Since(start).Seconds()
	}
	fmt.Printf("throughput before updates: %.0f pps\n", throughput())

	// Apply a sustained burst of updates: modify existing rules (delete +
	// insert into the remainder) and add brand-new rules. The autopilot
	// retrains whenever 500 updates accumulate.
	nextID := 1 << 20
	for i := 0; i < 2000; i++ {
		switch i % 4 {
		case 0: // delete a built rule
			if err := table.Delete(rs.Rules[rng.Intn(rs.Len())].ID); err != nil {
				continue // already deleted: pick another next round
			}
		case 1, 2: // insert a new specific rule
			r := nuevomatch.Rule{
				ID:       nextID,
				Priority: int32(rng.Intn(1 << 20)),
				Fields: []nuevomatch.Range{
					nuevomatch.PrefixRange(rng.Uint32(), 24),
					nuevomatch.PrefixRange(rng.Uint32(), 24),
					nuevomatch.FullRange(),
					nuevomatch.ExactRange(uint32(rng.Intn(65536))),
					nuevomatch.ExactRange(6),
				},
			}
			nextID++
			if err := table.Insert(r); err != nil {
				log.Fatal(err)
			}
		case 3: // modify: matching-set change moves the rule to the remainder
			victim := rs.Rules[rng.Intn(rs.Len())]
			mod := victim
			mod.Fields = append([]nuevomatch.Range(nil), victim.Fields...)
			mod.Fields[nuevomatch.FieldDstPort] = nuevomatch.ExactRange(uint32(rng.Intn(65536)))
			if err := table.Modify(mod); err != nil {
				continue // victim may have been deleted earlier
			}
		}
		// Lookups keep being served throughout, swaps included.
		table.Lookup(tr.Packets[i%len(tr.Packets)])
	}
	st := table.Updates()
	fmt.Printf("after churn: live %d rules, remainder fraction %.1f%%\n",
		st.LiveRules, st.RemainderFraction*100)
	fmt.Printf("throughput during churn regime: %.0f pps\n", throughput())

	// Quiesce the watcher: Stop waits out any in-flight background retrain,
	// so the stats below are final and the manual retrain cannot collide
	// with one. If the burst outran every poll, force one synchronous check.
	table.Autopilot().Stop()
	if table.Autopilot().Stats().Retrains == 0 {
		if _, err := table.Autopilot().Check(); err != nil {
			log.Fatal(err)
		}
	}
	ast := table.Autopilot().Stats()
	fmt.Printf("autopilot: %d retrains (trigger %q), %d journaled updates replayed, max swap %v, %d persist failures\n",
		ast.Retrains, ast.LastTrigger, ast.Replayed, ast.MaxSwap.Round(time.Microsecond), ast.PersistFailures)
	fmt.Printf("remainder fraction now %.1f%% (policy keeps coverage fresh)\n",
		table.Updates().RemainderFraction*100)

	// A manual in-place retrain is also available (Figure 7's periodic
	// retraining without the supervisor): the handle never changes.
	start := time.Now()
	rst, err := table.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manual retrain in %v: coverage %.1f%% -> %.1f%%, swap stalled updates for %v\n",
		time.Since(start).Round(time.Millisecond),
		rst.CoverageBefore*100, rst.CoverageAfter*100, rst.SwapTime.Round(time.Microsecond))
	fmt.Printf("throughput after retrain: %.0f pps\n", throughput())

	// Warm restart: the autopilot persisted the artifact after each retrain,
	// so a fresh process loads the trained state in milliseconds.
	start = time.Now()
	restarted, err := nuevomatch.LoadFile(artifact)
	if err != nil {
		log.Fatal(err)
	}
	defer restarted.Close()
	fmt.Printf("warm restart from %s in %v (no retraining)\n", filepath.Base(artifact),
		time.Since(start).Round(time.Millisecond))

	// Consistency check: the restarted table agrees with the live one as of
	// its last persist; both must agree with each other on current packets
	// up to the drift applied after the final persist — here we just compare
	// the live table against its own linear reference.
	live := table.Engine().LiveRuleSet()
	mismatches := 0
	for i := 0; i < 5000; i++ {
		p := tr.Packets[rng.Intn(len(tr.Packets))]
		a := table.Lookup(p)
		want := live.MatchID(p)
		if a != want {
			// Equal-priority ties may resolve differently across builds.
			if priorityOf(live, a) != priorityOf(live, want) {
				mismatches++
			}
		}
	}
	fmt.Printf("live table vs linear reference: %d mismatches over 5000 packets\n", mismatches)
}

func priorityOf(rs *nuevomatch.RuleSet, id int) int32 {
	for i := range rs.Rules {
		if rs.Rules[i].ID == id {
			return rs.Rules[i].Priority
		}
	}
	return -1
}
