package nuevomatch_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nuevomatch"
	"nuevomatch/internal/classbench"
	"nuevomatch/internal/faultinject"
	"nuevomatch/internal/rqrmi"
)

// fastShardOpts keeps per-shard training cheap in public-API tests.
func fastShardOpts() []nuevomatch.Option {
	return []nuevomatch.Option{
		nuevomatch.WithRQRMI(rqrmi.Config{
			StageWidths:    []int{1, 4},
			TargetError:    32,
			MaxRetrain:     2,
			MinSamples:     64,
			MaxSamples:     1024,
			InternalEpochs: 120,
			LeafEpochs:     200,
			Seed:           1,
			Workers:        2,
		}),
	}
}

// uniquePriorities remaps a generated rule-set onto unique priorities so
// differential comparisons have no tie ambiguity.
func uniquePriorities(rs *nuevomatch.RuleSet) {
	for i := range rs.Rules {
		rs.Rules[i].Priority = int32(i + 1)
	}
}

// probePackets draws match-biased probes against the rule-set.
func probePackets(rng *rand.Rand, rs *nuevomatch.RuleSet, n int) []nuevomatch.Packet {
	pkts := make([]nuevomatch.Packet, n)
	for i := range pkts {
		p := make(nuevomatch.Packet, rs.NumFields)
		if rs.Len() > 0 && rng.Intn(4) != 0 {
			classbench.FillMatchingPacket(rng, &rs.Rules[rng.Intn(rs.Len())], p)
		} else {
			for d := range p {
				p[d] = rng.Uint32()
			}
		}
		pkts[i] = p
	}
	return pkts
}

// TestClusterEquivalentToTable is the public-API acceptance differential:
// on every ClassBench profile, a 1-shard cluster and a multi-shard cluster
// must answer exactly like the plain Table, scalar and batched, both
// freshly built and after 20% churn.
func TestClusterEquivalentToTable(t *testing.T) {
	profiles := classbench.Profiles()
	size := 200
	if testing.Short() {
		profiles = []classbench.Profile{profiles[0], profiles[5], profiles[10]}
	}
	for pi, prof := range profiles {
		t.Run(prof.Name, func(t *testing.T) {
			rs := classbench.Generate(prof, size)
			uniquePriorities(rs)

			table, err := nuevomatch.Open(rs.Clone(), fastShardOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			defer table.Close()
			single, err := nuevomatch.OpenCluster(rs.Clone(),
				append(fastShardOpts2(), nuevomatch.WithShards(1))...)
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()
			multi, err := nuevomatch.OpenCluster(rs.Clone(),
				append(fastShardOpts2(), nuevomatch.WithShards(3))...)
			if err != nil {
				t.Fatal(err)
			}
			defer multi.Close()

			rng := rand.New(rand.NewSource(800 + int64(pi)))
			verify := func(stage string, mirror *nuevomatch.RuleSet) {
				t.Helper()
				pkts := probePackets(rng, mirror, 300)
				outT := make([]int, len(pkts))
				outS := make([]int, len(pkts))
				outM := make([]int, len(pkts))
				table.LookupBatch(pkts, outT)
				single.LookupBatch(pkts, outS)
				multi.LookupBatch(pkts, outM)
				for i, p := range pkts {
					want := mirror.MatchID(p)
					if got := table.Lookup(p); got != want {
						t.Fatalf("%s: table.Lookup = %d, want %d", stage, got, want)
					}
					if got := single.Lookup(p); got != want {
						t.Fatalf("%s: 1-shard cluster.Lookup = %d, want %d", stage, got, want)
					}
					if got := multi.Lookup(p); got != want {
						t.Fatalf("%s: %d-shard cluster.Lookup = %d, want %d", stage, multi.NumShards(), got, want)
					}
					if outT[i] != want || outS[i] != want || outM[i] != want {
						t.Fatalf("%s: batch[%d] table %d / single %d / multi %d, want %d",
							stage, i, outT[i], outS[i], outM[i], want)
					}
				}
			}
			verify("static", rs)

			// 20% churn, applied identically to all three handles.
			mirror := rs.Clone()
			nextID := 5_000_000
			for ops := 0; ops < size/5; ops++ {
				if rng.Intn(2) == 0 && mirror.Len() > 16 {
					i := rng.Intn(mirror.Len())
					id := mirror.Rules[i].ID
					for _, h := range []interface{ Delete(int) error }{table, single, multi} {
						if err := h.Delete(id); err != nil {
							t.Fatalf("churn delete %d: %v", id, err)
						}
					}
					mirror.Rules[i] = mirror.Rules[mirror.Len()-1]
					mirror.Rules = mirror.Rules[:mirror.Len()-1]
				} else {
					src := mirror.Rules[rng.Intn(mirror.Len())]
					r := src
					r.ID = nextID
					nextID++
					r.Priority = int32(size + ops + 2)
					r.Fields = append([]nuevomatch.Range(nil), src.Fields...)
					for _, h := range []interface{ Insert(nuevomatch.Rule) error }{table, single, multi} {
						if err := h.Insert(r); err != nil {
							t.Fatalf("churn insert %d: %v", r.ID, err)
						}
					}
					mirror.Add(r)
				}
			}
			verify("churn", mirror)
		})
	}
}

// fastShardOpts2 wraps fastShardOpts as cluster options.
func fastShardOpts2() []nuevomatch.ClusterOption {
	return []nuevomatch.ClusterOption{nuevomatch.WithShardOptions(fastShardOpts()...)}
}

// TestClusterSaveLoadPublic round-trips a cluster through SaveDir and
// LoadCluster via the public API and proves the loaded cluster is live.
func TestClusterSaveLoadPublic(t *testing.T) {
	prof, err := classbench.ProfileByName("ipc1")
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(prof, 180)
	uniquePriorities(rs)
	cluster, err := nuevomatch.OpenCluster(rs.Clone(),
		append(fastShardOpts2(), nuevomatch.WithShards(3))...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	dir := filepath.Join(t.TempDir(), "cluster.d")
	if err := cluster.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := nuevomatch.LoadCluster(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	rng := rand.New(rand.NewSource(4))
	for _, p := range probePackets(rng, rs, 400) {
		if got, want := loaded.Lookup(p), cluster.Lookup(p); got != want {
			t.Fatalf("loaded.Lookup(%v) = %d, want %d", p, got, want)
		}
	}
	st := loaded.Stats()
	if st.Shards != cluster.NumShards() || st.LiveRules != rs.Len() {
		t.Fatalf("loaded stats %+v do not match saved cluster", st)
	}
	if err := loaded.Insert(nuevomatch.Rule{ID: 9_999_999, Priority: 1,
		Fields: fullFields(rs.NumFields)}); err != nil {
		t.Fatalf("insert into loaded cluster: %v", err)
	}
	if got := loaded.Lookup(make(nuevomatch.Packet, rs.NumFields)); got != 9_999_999 {
		t.Fatalf("wildcard insert invisible: got %d", got)
	}
}

func fullFields(n int) []nuevomatch.Range {
	f := make([]nuevomatch.Range, n)
	for i := range f {
		f[i] = nuevomatch.FullRange()
	}
	return f
}

// TestClusterAutopilotPersist drives churn through a cluster whose shards
// have Check-driven autopilots persisting into the saved directory: after a
// retrain, the directory must reload as a cluster equivalent to the live
// one.
func TestClusterAutopilotPersist(t *testing.T) {
	prof, err := classbench.ProfileByName("acl4")
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(prof, 160)
	uniquePriorities(rs)
	dir := filepath.Join(t.TempDir(), "cluster.d")

	cluster, err := nuevomatch.OpenCluster(rs.Clone(), append(fastShardOpts2(),
		nuevomatch.WithShards(2),
		nuevomatch.WithClusterAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:   30,
			MinLiveRules: 1,
			Interval:     -1, // Check-driven
		}),
		nuevomatch.WithClusterAutopilotPersist(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	// The persist directory must hold a full cluster before any retrain
	// fires, or a crash would have nothing to warm-start from.
	if err := cluster.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	mirror := rs.Clone()
	rng := rand.New(rand.NewSource(10))
	nextID := 7_000_000
	for ops := 0; ops < 120; ops++ {
		src := mirror.Rules[rng.Intn(mirror.Len())]
		r := src
		r.ID = nextID
		nextID++
		r.Priority = int32(1000 + ops)
		r.Fields = append([]nuevomatch.Range(nil), src.Fields...)
		if err := cluster.Insert(r); err != nil {
			t.Fatal(err)
		}
		mirror.Add(r)
		for s := 0; s < cluster.NumShards(); s++ {
			if _, err := cluster.ShardAutopilot(s).Check(); err != nil {
				t.Fatalf("shard %d check: %v", s, err)
			}
		}
	}
	st := cluster.AutopilotStats()
	if st.Retrains < 1 {
		t.Fatalf("no shard retrained: %+v", st)
	}
	if st.PersistFailures > 0 {
		t.Fatalf("persist failures: %+v", st)
	}

	// Wait until the shard files on disk settle (persist runs on the
	// retraining goroutine, synchronously within Check, so they already
	// have) and reload from the current generation.
	gdir, err := nuevomatch.ClusterCurrentDir(dir)
	if err != nil {
		t.Fatalf("resolving persisted generation: %v", err)
	}
	if _, err := os.Stat(filepath.Join(gdir, "cluster.json")); err != nil {
		t.Fatalf("manifest missing after persist: %v", err)
	}
	if rep, err := nuevomatch.FsckCluster(dir, false); err != nil {
		t.Fatalf("fsck after persist: %v", err)
	} else if !rep.Healthy() {
		t.Fatalf("fsck reports persisted dir unhealthy: %+v", rep)
	}
	loaded, err := nuevomatch.LoadCluster(dir)
	if err != nil {
		t.Fatalf("reloading persisted cluster: %v", err)
	}
	defer loaded.Close()
	for _, p := range probePackets(rng, mirror, 300) {
		if got, want := loaded.Lookup(p), mirror.MatchID(p); got != want {
			t.Fatalf("persisted cluster Lookup(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestClusterHealthQuarantine exercises the public health surface end to
// end: supervised retrain failures degrade the cluster (with per-shard
// attribution in the aggregated stats), crossing the quarantine threshold
// isolates the shard while lookups stay correct (fail-static), and the
// background rebuilder plus one clean supervised retrain return the
// cluster to Healthy.
func TestClusterHealthQuarantine(t *testing.T) {
	defer faultinject.Reset()
	prof, err := classbench.ProfileByName("ipc1")
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(prof, 200)
	uniquePriorities(rs)
	cluster, err := nuevomatch.OpenCluster(rs.Clone(), append(fastShardOpts2(),
		nuevomatch.WithShards(2),
		nuevomatch.WithClusterAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:   1, // any journaled update arms the next Check
			MinLiveRules: 1,
			Interval:     -1, // Check-driven
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if h := cluster.Health(); h.State != nuevomatch.Healthy {
		t.Fatalf("fresh cluster health = %v", h)
	}
	cluster.SetQuarantinePolicy(nuevomatch.QuarantinePolicy{
		FailureThreshold: 2,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
	})

	mirror := rs.Clone()
	addWildcard := func(id int) {
		t.Helper()
		r := nuevomatch.Rule{ID: id, Priority: int32(10_000 + id%1000),
			Fields: fullFields(rs.NumFields)}
		if err := cluster.Insert(r); err != nil {
			t.Fatal(err)
		}
		mirror.Add(r)
	}
	verify := func(stage string) {
		t.Helper()
		rng := rand.New(rand.NewSource(77))
		for _, p := range probePackets(rng, mirror, 300) {
			if got, want := cluster.Lookup(p), mirror.MatchID(p); got != want {
				t.Fatalf("%s: Lookup = %d, want %d", stage, got, want)
			}
		}
	}

	// Two supervised retrain failures on shard 0 cross the threshold.
	addWildcard(9_000_001) // wildcard: replicates into every shard's journal
	faultinject.Enable(faultinject.PointRetrainBuild, faultinject.Rule{FailCount: 3})
	if _, err := cluster.ShardAutopilot(0).Check(); err == nil {
		t.Fatal("first supervised retrain did not fail under fault")
	}
	if st := cluster.AutopilotStats(); !strings.HasPrefix(st.LastError, "shard 0:") {
		t.Fatalf("aggregated LastError lacks shard attribution: %q", st.LastError)
	}
	if h := cluster.Health(); h.State != nuevomatch.Degraded {
		t.Fatalf("health after one failure = %v", h)
	}
	if q := cluster.QuarantinedShards(); len(q) != 0 {
		t.Fatalf("quarantined below threshold: %v", q)
	}
	if _, err := cluster.ShardAutopilot(0).Check(); err == nil {
		t.Fatal("second supervised retrain did not fail under fault")
	}
	if q := cluster.QuarantinedShards(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("QuarantinedShards = %v, want [0]", q)
	}
	h := cluster.Health()
	if h.State != nuevomatch.Degraded {
		t.Fatalf("health under quarantine = %v", h)
	}
	seen := false
	for _, r := range h.Reasons {
		if r.Code == "shard-quarantined" && r.Shard == 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("no shard-quarantined reason in %v", h)
	}
	verify("quarantined") // fail-static: the isolated shard still serves

	// The rebuilder eats the last scheduled fault, then succeeds.
	faultinject.Reset()
	deadline := time.Now().Add(15 * time.Second)
	for len(cluster.QuarantinedShards()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("quarantine never cleared: health %v", cluster.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// One clean supervised retrain clears the shard's failure streak.
	addWildcard(9_000_002)
	for {
		if ran, err := cluster.ShardAutopilot(0).Check(); err == nil && ran {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("supervised retrain never succeeded: health %v", cluster.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if h := cluster.Health(); h.State != nuevomatch.Healthy {
		t.Fatalf("health after recovery = %v", h)
	}
	verify("recovered")

	cluster.Close()
	if h := cluster.Health(); h.State != nuevomatch.Failed {
		t.Fatalf("closed cluster health = %v", h)
	}
}

// TestClusterHealthNoDoubleCount pins the mid-quarantine-rebuild coherence
// window: while a shard sits in quarantine, its consecutive retrain
// failures are the reason it is there, and Health() must report the single
// "shard-quarantined" reason for it — not additionally the autopilot's
// "retrain-failing" for the same shard. A readiness endpoint tallying
// reasons would otherwise see one sick shard as two.
func TestClusterHealthNoDoubleCount(t *testing.T) {
	defer faultinject.Reset()
	prof, err := classbench.ProfileByName("ipc1")
	if err != nil {
		t.Fatal(err)
	}
	rs := classbench.Generate(prof, 200)
	uniquePriorities(rs)
	cluster, err := nuevomatch.OpenCluster(rs.Clone(), append(fastShardOpts2(),
		nuevomatch.WithShards(2),
		nuevomatch.WithClusterAutopilot(nuevomatch.AutopilotPolicy{
			MaxUpdates:   1,
			MinLiveRules: 1,
			Interval:     -1, // Check-driven
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.SetQuarantinePolicy(nuevomatch.QuarantinePolicy{
		FailureThreshold: 2,
		BaseBackoff:      50 * time.Millisecond,
		MaxBackoff:       time.Second,
	})

	// Unlimited build faults: the supervised retrains fail into quarantine
	// and the background rebuilder keeps failing too, holding the window
	// open while we inspect it.
	faultinject.Enable(faultinject.PointRetrainBuild, faultinject.Rule{})
	r := nuevomatch.Rule{ID: 9_100_001, Priority: 20_000, Fields: fullFields(rs.NumFields)}
	if err := cluster.Insert(r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cluster.ShardAutopilot(0).Check(); err == nil {
			t.Fatalf("supervised retrain %d did not fail under fault", i)
		}
	}
	if q := cluster.QuarantinedShards(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("QuarantinedShards = %v, want [0]", q)
	}

	h := cluster.Health()
	if h.State != nuevomatch.Degraded {
		t.Fatalf("health mid-quarantine = %v, want Degraded", h)
	}
	perShardCodes := make(map[int][]string)
	for _, reason := range h.Reasons {
		perShardCodes[reason.Shard] = append(perShardCodes[reason.Shard], reason.Code)
	}
	codes := perShardCodes[0]
	if len(codes) != 1 || codes[0] != "shard-quarantined" {
		t.Fatalf("shard 0 reasons = %v, want exactly [shard-quarantined]; full health: %v", codes, h)
	}

	// Lift the faults and let the rebuilder clear the quarantine so Close
	// does not race a failing rebuild loop.
	faultinject.Reset()
	deadline := time.Now().Add(15 * time.Second)
	for len(cluster.QuarantinedShards()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("quarantine never cleared: health %v", cluster.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
